#include "comm/comm.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <thread>
#include <tuple>

#include "comm/reliable.hpp"

namespace picprk::comm {

bool Comm::transport_retry_pending() const {
  return state_->transport != nullptr && state_->transport->retry_pending_to(world_rank_);
}

Comm::Comm(WorldState* state, int world_rank)
    : state_(state), world_rank_(world_rank), context_(0), rank_(world_rank) {
  PICPRK_EXPECTS(state != nullptr);
  PICPRK_EXPECTS(world_rank >= 0 && world_rank < state->size);
  group_.resize(static_cast<std::size_t>(state->size));
  std::iota(group_.begin(), group_.end(), 0);
  interrupt_seen_ = state_->interrupt_epoch.load(std::memory_order_acquire);
}

Comm::Comm(WorldState* state, int world_rank, int context, std::vector<int> group)
    : state_(state), world_rank_(world_rank), context_(context), group_(std::move(group)) {
  auto it = std::find(group_.begin(), group_.end(), world_rank_);
  PICPRK_ASSERT_MSG(it != group_.end(), "rank not a member of its own communicator");
  rank_ = static_cast<int>(it - group_.begin());
  interrupt_seen_ = state_->interrupt_epoch.load(std::memory_order_acquire);
}

int Comm::group_index(int wrank) const {
  auto it = std::find(group_.begin(), group_.end(), wrank);
  PICPRK_ASSERT_MSG(it != group_.end(), "message from a rank outside this communicator");
  return static_cast<int>(it - group_.begin());
}

void Comm::send_bytes(std::vector<std::byte> bytes, int dst, int tag) {
  send_internal(std::move(bytes), dst, tag);
}

void Comm::send_internal(std::vector<std::byte> bytes, int dst, int tag) {
  PICPRK_EXPECTS(dst >= 0 && dst < size());
  const int wdst = group_[static_cast<std::size_t>(dst)];
  int copies = 1;
  if (FaultHook* hook = state_->options.fault_hook) {
    const FaultDecision decision = hook->on_send(world_rank_, wdst, tag, bytes.size());
    switch (decision.kind) {
      case FaultDecision::Kind::Deliver:
        break;
      case FaultDecision::Kind::Drop:
        copies = 0;  // lost on the wire
        break;
      case FaultDecision::Kind::Duplicate:
        copies = 2;
        break;
      case FaultDecision::Kind::Delay: {
        // Sender-side latency; chunked so an abort or a recovery
        // interrupt cuts it short.
        auto remaining = std::chrono::milliseconds(decision.delay_ms);
        while (remaining.count() > 0) {
          if (state_->abort.load(std::memory_order_acquire)) throw WorldAborted{};
          if (state_->interrupt_epoch.load(std::memory_order_acquire) !=
              interrupt_seen_) {
            throw RecvInterrupted{};
          }
          const auto slice = std::min(remaining, std::chrono::milliseconds(5));
          std::this_thread::sleep_for(slice);
          remaining -= slice;
        }
        break;
      }
    }
  }
  if (ReliableTransport* transport = state_->transport.get()) {
    // The transport retains its own copy, heals a dropped wire copy by
    // retransmission and swallows the duplicate in its dedup window.
    Message msg;
    msg.context = context_;
    msg.source = world_rank_;
    msg.tag = tag;
    msg.payload = std::move(bytes);
    transport->send(world_rank_, wdst, std::move(msg), copies);
    return;
  }
  // Unreliable (legacy) path: a dropped message hangs the receiver (the
  // watchdog's job to surface) and a duplicate reaches the mailbox. The
  // extra copy is flagged so the residual drain can tell a would-be
  // dedup-window hit from a genuine protocol leak.
  for (int c = 0; c < copies; ++c) {
    state_->bytes_sent.fetch_add(bytes.size(), std::memory_order_relaxed);
    state_->messages_sent.fetch_add(1, std::memory_order_relaxed);
    Message msg;
    msg.context = context_;
    msg.source = world_rank_;
    msg.tag = tag;
    if (c > 0) msg.flags |= kFlagInjectedDup;
    msg.payload = c + 1 < copies ? bytes : std::move(bytes);
    state_->boxes[static_cast<std::size_t>(wdst)]->push(std::move(msg));
  }
}

Message Comm::recv_bytes(int src, int tag) { return recv_internal(src, tag); }

Mailbox::WaitParams Comm::wait_params() const {
  Mailbox::WaitParams wp = state_->wait_params(world_rank_);
  wp.interrupt_baseline = interrupt_seen_;
  return wp;
}

Message Comm::recv_internal(int src, int tag) {
  PICPRK_EXPECTS(src == kAnySource || (src >= 0 && src < size()));
  const int wsrc = src == kAnySource ? kAnySource : group_[static_cast<std::size_t>(src)];
  Message msg = state_->boxes[static_cast<std::size_t>(world_rank_)]->pop(
      context_, wsrc, tag, wait_params());
  // Translate the source back into this communicator's rank space for
  // user-facing receives; internal callers use group_index explicitly.
  return msg;
}

Status Comm::probe(int src, int tag) {
  PICPRK_EXPECTS(src == kAnySource || (src >= 0 && src < size()));
  const int wsrc = src == kAnySource ? kAnySource : group_[static_cast<std::size_t>(src)];
  Status st = state_->boxes[static_cast<std::size_t>(world_rank_)]->probe_wait(
      context_, wsrc, tag, wait_params());
  st.source = group_index(st.source);
  return st;
}

std::optional<std::vector<std::byte>> Comm::try_recv_buffer(int src, int tag,
                                                            Status* status) {
  PICPRK_EXPECTS(src == kAnySource || (src >= 0 && src < size()));
  const int wsrc = src == kAnySource ? kAnySource : group_[static_cast<std::size_t>(src)];
  auto msg =
      state_->boxes[static_cast<std::size_t>(world_rank_)]->try_pop(context_, wsrc, tag);
  if (!msg) {
    // Match the blocking path's precedence: a deliverable message wins
    // over abort/interrupt, so those are only checked on an empty match.
    const Mailbox::WaitParams wp = wait_params();
    if (wp.abort && wp.abort->load(std::memory_order_acquire)) throw WorldAborted{};
    if (wp.interrupt &&
        wp.interrupt->load(std::memory_order_acquire) != wp.interrupt_baseline)
      throw RecvInterrupted{};
    return std::nullopt;
  }
  if (status) *status = Status{group_index(msg->source), msg->tag, msg->payload.size()};
  return std::move(msg->payload);
}

std::optional<Status> Comm::iprobe(int src, int tag) {
  PICPRK_EXPECTS(src == kAnySource || (src >= 0 && src < size()));
  const int wsrc = src == kAnySource ? kAnySource : group_[static_cast<std::size_t>(src)];
  auto st = state_->boxes[static_cast<std::size_t>(world_rank_)]->probe(context_, wsrc, tag);
  if (st) st->source = group_index(st->source);
  return st;
}

void Comm::barrier() {
  const int tag = next_tag(detail::Op::Barrier);
  const int p = size();
  for (int k = 1; k < p; k <<= 1) {
    const int dst = (rank_ + k) % p;
    const int src = (rank_ - k % p + p) % p;
    send_internal({}, dst, tag);
    (void)recv_internal(src, tag);
  }
}

Comm Comm::split(int color, int key) {
  const int tag = next_tag(detail::Op::Split);

  // Gather (color, key, world rank) triples on rank 0 of this comm.
  struct Triple {
    int color, key, wrank;
  };
  const Triple mine{color, key, world_rank_};
  std::vector<std::vector<Triple>> all = gather(std::span<const Triple>(&mine, 1), 0);

  // Rank 0 forms the groups, allocates one fresh context id per color,
  // and sends each member its (context, group) description.
  std::vector<int> my_group;
  int my_context = -1;
  if (rank_ == 0) {
    std::vector<Triple> flat;
    for (auto& v : all) flat.insert(flat.end(), v.begin(), v.end());
    std::stable_sort(flat.begin(), flat.end(), [](const Triple& a, const Triple& b) {
      return std::tie(a.color, a.key, a.wrank) < std::tie(b.color, b.key, b.wrank);
    });
    std::size_t i = 0;
    while (i < flat.size()) {
      std::size_t j = i;
      while (j < flat.size() && flat[j].color == flat[i].color) ++j;
      const int ctx = state_->next_context.fetch_add(1, std::memory_order_relaxed);
      std::vector<int> members;
      members.reserve(j - i);
      for (std::size_t t = i; t < j; ++t) members.push_back(flat[t].wrank);
      for (std::size_t t = i; t < j; ++t) {
        const int member_comm_rank = group_index(flat[t].wrank);
        if (member_comm_rank == 0) {
          my_context = ctx;
          my_group = members;
        } else {
          std::vector<int> desc;
          desc.push_back(ctx);
          desc.insert(desc.end(), members.begin(), members.end());
          send_internal(as_bytes_copy(std::span<const int>(desc)), member_comm_rank, tag);
        }
      }
      i = j;
    }
  } else {
    Message msg = recv_internal(0, tag);
    auto desc = from_bytes<int>(msg.payload);
    PICPRK_ASSERT(desc.size() >= 2);
    my_context = desc.front();
    my_group.assign(desc.begin() + 1, desc.end());
  }
  PICPRK_ASSERT(my_context > 0);
  return Comm(state_, world_rank_, my_context, std::move(my_group));
}

}  // namespace picprk::comm
