// Reliable in-band delivery for threadcomm (docs/RESILIENCE.md, level 1
// of the recovery ladder). Sits *under* the per-rank mailboxes: every
// send is stamped with a per-(source, destination) stream sequence
// number and a cumulative acknowledgement piggybacked for the reverse
// direction, a copy is retained until acknowledged, and a pump thread
// retransmits unacknowledged messages with exponential backoff and
// seeded jitter. The receive side delivers each stream exactly once and
// in order through a bounded reorder/dedup window, so the drop,
// duplicate and delay fates of ft::FaultInjector heal transparently —
// CommTimeout becomes the signal of *suspected permanent* failure
// instead of the first line of defense.
//
// Deliberately obs-free (the comm layer must not depend on the obs
// subsystem): counters are plain relaxed atomics snapshot via stats().
#pragma once

#include <cstddef>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "comm/message.hpp"

namespace picprk::comm {

class Mailbox;

/// Knobs of the reliable transport; defaults keep it off (zero cost:
/// one null-pointer test per send).
struct ReliabilityOptions {
  bool enabled = false;
  /// Base retransmit timeout in ms; doubles per attempt (plus jitter).
  int rto_ms = 20;
  /// Retransmit budget per message; once exhausted the message is
  /// abandoned and a blocked receiver's CommTimeout may finally fire.
  int max_retransmits = 8;
  /// Seed of the deterministic backoff jitter (counter-hashed per
  /// channel/sequence/attempt, so two runs retransmit identically).
  std::uint64_t jitter_seed = 0x9E3779B9u;
  /// Test hook: black-hole every retransmission too, so a test can pin
  /// that CommTimeout fires only once the budget is exhausted.
  bool lose_retransmits = false;
};

/// Lifetime tallies of one transport, snapshot under its lock.
struct TransportStats {
  std::uint64_t retransmits = 0;   ///< copies resent by the pump
  std::uint64_t dup_dropped = 0;   ///< dedup-window hits discarded
  std::uint64_t reordered = 0;     ///< arrivals stashed out of order
  std::uint64_t acked = 0;         ///< unacked entries retired
  std::uint64_t abandoned = 0;     ///< entries past the retransmit budget
};

/// One reliability domain spanning all ordered rank pairs of a world.
/// A single lock guards every channel: threadcomm worlds are small
/// (P <= 16 in every configuration the kernel runs), reliability is
/// opt-in, and correctness under concurrent senders, the pump and the
/// receive-side flush matters far more than send-path parallelism here.
///
/// Lock ordering: the transport lock is taken *before* any mailbox lock
/// (delivery pushes under the transport lock). Code holding a mailbox
/// lock must never enter the transport — the mailbox's timeout path
/// only reads the lock-free retry_pending_to() counters.
class ReliableTransport {
 public:
  ReliableTransport(int size, const ReliabilityOptions& options,
                    const std::vector<std::unique_ptr<Mailbox>>* boxes,
                    std::atomic<std::uint64_t>* bytes_sent,
                    std::atomic<std::uint64_t>* messages_sent);

  ReliableTransport(const ReliableTransport&) = delete;
  ReliableTransport& operator=(const ReliableTransport&) = delete;

  /// Accepts one application send on the src -> dst stream: stamps
  /// seq/ack, retains a retransmittable copy, then feeds `copies`
  /// wire copies through the receive pipeline. `copies` encodes the
  /// injected fault fate: 0 = dropped on the wire (the pump heals it),
  /// 1 = normal delivery, 2 = injected duplicate (the dedup window
  /// swallows the extra copy).
  void send(int src, int dst, Message msg, int copies);

  /// One retransmit sweep: retires acknowledged entries, resends those
  /// past their (backoff + jitter) deadline, abandons those past the
  /// budget. Called periodically by World::run's pump thread.
  void pump_once();

  /// True while some unacknowledged message addressed to `rank` still
  /// has retransmit budget left. Lock-free; the mailbox timeout path
  /// polls this to defer CommTimeout until retries are truly exhausted.
  bool retry_pending_to(int rank) const {
    return pending_to_[static_cast<std::size_t>(rank)].load(
               std::memory_order_acquire) > 0;
  }

  /// Discards all in-flight state (unacked copies and reorder stashes)
  /// and fast-forwards every stream past the abandoned sequence numbers,
  /// so a recovery that drained the mailboxes cannot wedge on a gap that
  /// will never be filled. Streams stay aligned: sender and receiver
  /// state live in the same object.
  void flush();

  TransportStats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Unacked {
    std::uint64_t seq = 0;
    Message msg;  ///< full retransmittable copy
    Clock::time_point last_send;
    int attempts = 0;  ///< retransmissions so far
  };

  /// Directional stream state for one ordered (src, dst) pair. The tx
  /// half is written by senders on src, the rx half by the delivery
  /// pipeline on behalf of dst; both live here because the transport is
  /// in-process and one lock covers them.
  struct Channel {
    std::uint64_t tx_next = 0;       ///< last sequence number assigned
    std::deque<Unacked> unacked;     ///< ascending by seq
    std::uint64_t rx_delivered = 0;  ///< cumulative: all seqs <= this pushed
    std::map<std::uint64_t, Message> reorder;  ///< seqs past a gap
  };

  Channel& chan(int src, int dst) {
    return channels_[static_cast<std::size_t>(src) * static_cast<std::size_t>(size_) +
                     static_cast<std::size_t>(dst)];
  }

  /// Receive pipeline for one wire copy: processes the piggybacked ack,
  /// then dedups/reorders/pushes on the src -> dst stream.
  void deliver_locked(int src, int dst, Message msg);

  /// Pushes one in-order message into dst's mailbox (counts it like a
  /// legacy send would).
  void push_locked(int dst, Message msg);

  /// Retires acknowledged entries of (src, dst); `acked_up_to` comes
  /// from a piggybacked ack or the channel's own rx cursor.
  void prune_locked(Channel& ch, int dst, std::uint64_t acked_up_to);

  /// Backoff deadline for attempt `attempts` of `seq` on channel index
  /// `chan_index`: rto * 2^attempts plus up to 25% deterministic jitter.
  Clock::duration backoff(std::size_t chan_index, std::uint64_t seq,
                          int attempts) const;

  const int size_;
  const ReliabilityOptions options_;
  const std::vector<std::unique_ptr<Mailbox>>* boxes_;
  std::atomic<std::uint64_t>* bytes_sent_;
  std::atomic<std::uint64_t>* messages_sent_;

  mutable std::mutex mutex_;
  std::vector<Channel> channels_;  // size * size, indexed src * size + dst
  /// Per-destination count of unacked entries still within budget;
  /// lock-free so the mailbox timeout path can read it while holding
  /// its own lock (see the lock-ordering note above).
  std::vector<std::atomic<int>> pending_to_;

  TransportStats stats_;  // guarded by mutex_
};

}  // namespace picprk::comm
