// Fault-injection hook interface of threadcomm. The comm layer calls an
// installed hook on every message send so a fault model (src/ft) can
// perturb delivery — drop, duplicate or delay messages — without the
// comm layer depending on the fault-tolerance library. A null hook costs
// one pointer test per send; the default world installs none.
#pragma once

#include <cstddef>

namespace picprk::comm {

/// What the hook wants done with one outgoing message.
struct FaultDecision {
  enum class Kind {
    Deliver,    ///< normal delivery
    Drop,       ///< silently lose the message (a hang downstream is the
                ///< *intended* symptom; the watchdog must surface it)
    Duplicate,  ///< deliver twice (network-level retransmission bug)
    Delay,      ///< sleep `delay_ms` in the sender, then deliver
  };
  Kind kind = Kind::Deliver;
  int delay_ms = 0;
};

/// Implemented by the fault injector; installed via WorldOptions.
class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Called on every message send, collectives included. Endpoints are
  /// world ranks; `tag` is the wire tag (negative = collective traffic).
  /// Must be thread-safe: every rank thread calls it concurrently.
  virtual FaultDecision on_send(int src, int dst, int tag, std::size_t bytes) = 0;
};

}  // namespace picprk::comm
