#include "field/deposit.hpp"

#include <cmath>

namespace picprk::field {

CicWeights cic_weights(double x, double y, const pic::GridSpec& grid) {
  CicWeights w;
  const double gx = x / grid.h;
  const double gy = y / grid.h;
  w.i = static_cast<std::int64_t>(std::floor(gx));
  w.j = static_cast<std::int64_t>(std::floor(gy));
  const double fx = gx - static_cast<double>(w.i);
  const double fy = gy - static_cast<double>(w.j);
  w.w_bl = (1.0 - fx) * (1.0 - fy);
  w.w_br = fx * (1.0 - fy);
  w.w_tl = (1.0 - fx) * fy;
  w.w_tr = fx * fy;
  return w;
}

void deposit_cic(std::span<const pic::Particle> particles, const pic::GridSpec& grid,
                 ScalarField& rho) {
  const double inv_cell_area = 1.0 / (grid.h * grid.h);
  for (const pic::Particle& p : particles) {
    const CicWeights w = cic_weights(p.x, p.y, grid);
    const double q = p.q * inv_cell_area;
    rho.at(w.i, w.j) += q * w.w_bl;
    rho.at(w.i + 1, w.j) += q * w.w_br;
    rho.at(w.i, w.j + 1) += q * w.w_tl;
    rho.at(w.i + 1, w.j + 1) += q * w.w_tr;
  }
}

}  // namespace picprk::field
