#include "field/deposit.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace picprk::field {

CicWeights cic_weights(double x, double y, const pic::GridSpec& grid) {
  CicWeights w;
  const double gx = x / grid.h;
  const double gy = y / grid.h;
  w.i = static_cast<std::int64_t>(std::floor(gx));
  w.j = static_cast<std::int64_t>(std::floor(gy));
  const double fx = gx - static_cast<double>(w.i);
  const double fy = gy - static_cast<double>(w.j);
  w.w_bl = (1.0 - fx) * (1.0 - fy);
  w.w_br = fx * (1.0 - fy);
  w.w_tl = (1.0 - fx) * fy;
  w.w_tr = fx * fy;
  return w;
}

void deposit_cic(std::span<const pic::Particle> particles, const pic::GridSpec& grid,
                 ScalarField& rho) {
  const double inv_cell_area = 1.0 / (grid.h * grid.h);
  for (const pic::Particle& p : particles) {
    const CicWeights w = cic_weights(p.x, p.y, grid);
    const double q = p.q * inv_cell_area;
    rho.at(w.i, w.j) += q * w.w_bl;
    rho.at(w.i + 1, w.j) += q * w.w_br;
    rho.at(w.i, w.j + 1) += q * w.w_tl;
    rho.at(w.i + 1, w.j + 1) += q * w.w_tr;
  }
}

namespace {

struct TileSums {
  double bl = 0, br = 0, tl = 0, tr = 0;
};

/// Accumulates one tile's weighted charge into four sums. The weights
/// match cic_weights exactly: gx = x/h and fx = gx − cx is the same
/// arithmetic as gx − floor(gx), because every row of a fresh tile has
/// floor(x/h) == cx. Restrict parameters keep the loop dependence-free.
TileSums accumulate_tile(const double* __restrict x, const double* __restrict y,
                         const double* __restrict q, std::size_t n, double cx, double cy,
                         double h) {
  TileSums s;
  for (std::size_t i = 0; i < n; ++i) {
    const double fx = x[i] / h - cx;
    const double fy = y[i] / h - cy;
    s.bl += q[i] * ((1.0 - fx) * (1.0 - fy));
    s.br += q[i] * (fx * (1.0 - fy));
    s.tl += q[i] * ((1.0 - fx) * fy);
    s.tr += q[i] * (fx * fy);
  }
  return s;
}

}  // namespace

void deposit_cic(const pic::ParticleSoA& soa, const pic::TileIndex& tiles,
                 const pic::GridSpec& grid, ScalarField& rho) {
  PICPRK_EXPECTS(tiles.fresh());
  const double inv_cell_area = 1.0 / (grid.h * grid.h);
  const double* const x = soa.x.data();
  const double* const y = soa.y.data();
  const double* const q = soa.q.data();
  for (const pic::TileIndex::Tile& t : tiles.tiles()) {
    const TileSums s = accumulate_tile(x + t.begin, y + t.begin, q + t.begin,
                                       t.end - t.begin, static_cast<double>(t.cx),
                                       static_cast<double>(t.cy), grid.h);
    rho.at(t.cx, t.cy) += s.bl * inv_cell_area;
    rho.at(t.cx + 1, t.cy) += s.br * inv_cell_area;
    rho.at(t.cx, t.cy + 1) += s.tl * inv_cell_area;
    rho.at(t.cx + 1, t.cy + 1) += s.tr * inv_cell_area;
  }
  // Index tail (appended/out-of-region rows): scalar per-particle path.
  for (std::size_t i = tiles.tail_begin(); i < soa.size(); ++i) {
    const CicWeights w = cic_weights(soa.x[i], soa.y[i], grid);
    const double qi = soa.q[i] * inv_cell_area;
    rho.at(w.i, w.j) += qi * w.w_bl;
    rho.at(w.i + 1, w.j) += qi * w.w_br;
    rho.at(w.i, w.j + 1) += qi * w.w_tl;
    rho.at(w.i + 1, w.j + 1) += qi * w.w_tr;
  }
}

}  // namespace picprk::field
