// Distributed mini-PIC: the full §III-A cycle over threadcomm ranks —
// block-decomposed particles AND fields, per-step particle exchange,
// halo-folded deposition, distributed CG, halo-exchanged field gather.
// The distributed counterpart of field::MiniPic, bit-comparable to it up
// to floating-point summation order.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/comm.hpp"
#include "field/dist_solver.hpp"
#include "field/mini_pic.hpp"
#include "par/decomposition.hpp"

namespace picprk::field {

class DistributedMiniPic {
 public:
  /// Collective. `particles` may contain any subset of the global
  /// population on each rank (commonly: the full set on rank 0, empty
  /// elsewhere, or pre-partitioned); they are routed to their owners.
  DistributedMiniPic(comm::Comm& comm, MiniPicConfig config,
                     std::vector<pic::Particle> particles);

  /// One cycle: gather+push, particle exchange, deposit, solve, E.
  /// Collective; returns global diagnostics.
  MiniPicDiagnostics step();

  MiniPicDiagnostics run(std::uint32_t steps);

  /// This rank's particles (all inside its block).
  const std::vector<pic::Particle>& particles() const { return particles_; }

  /// Global diagnostics (collective).
  MiniPicDiagnostics diagnostics();

  /// Charge density at a *global* point this rank owns.
  double rho_at(std::int64_t gi, std::int64_t gj) const { return rho_.at(gi, gj); }
  bool owns_point(std::int64_t gi, std::int64_t gj) const { return rho_.owns(gi, gj); }

  std::uint64_t particles_exchanged() const { return particles_exchanged_; }

 private:
  void recompute_fields();

  comm::Comm& comm_;
  MiniPicConfig config_;
  comm::Cart2D cart_;
  par::Decomposition2D decomp_;
  std::vector<pic::Particle> particles_;
  DistributedField rho_;
  DistributedField phi_;
  DistributedField ex_;
  DistributedField ey_;
  CgResult last_solve_;
  std::uint64_t particles_exchanged_ = 0;
};

}  // namespace picprk::field
