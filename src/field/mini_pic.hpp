// The complete Particle-in-Cell computational cycle of paper §III-A —
// the application the PRK abstracts from:
//
//   (1) push particles using the field at their positions,
//   (2) deposit charge density onto the mesh (CIC),
//   (3) solve −∇²φ = ρ and compute E = −∇φ,
//   (4) interpolate E back to the particles (merged into the next push).
//
// This is a real (if minimal) electrostatic plasma simulation, provided
// so the repository carries the context the kernel isolates its
// load-balancing pattern from. It is NOT the PRK (the paper explains why
// a full PIC application makes a poor benchmark: not exactly verifiable,
// mixes performance artifacts); conservation diagnostics take the place
// of the closed-form verification.
#pragma once

#include <cstdint>
#include <vector>

#include "field/deposit.hpp"
#include "field/grid_field.hpp"
#include "field/poisson.hpp"
#include "pic/particle.hpp"

namespace picprk::field {

/// Bilinear interpolation of E at a position (step 4 of the cycle).
struct FieldSample {
  double ex = 0.0;
  double ey = 0.0;
};
FieldSample interpolate(const VectorField& e, double x, double y,
                        const pic::GridSpec& grid);

struct MiniPicConfig {
  pic::GridSpec grid{64, 1.0};
  double dt = 0.1;
  double mass = 1.0;
  double cg_rtol = 1e-8;
};

struct MiniPicDiagnostics {
  double total_charge = 0.0;     ///< ∑ q (conserved exactly)
  double momentum_x = 0.0;       ///< ∑ m·v (conserved up to grid error)
  double momentum_y = 0.0;
  double kinetic_energy = 0.0;
  double field_energy = 0.0;     ///< ½ ∑ |E|² h²
  int cg_iterations = 0;
  double cg_residual = 0.0;
};

/// One self-consistent PIC cycle over the particle set. `particles` are
/// pushed in place; the fields are recomputed from the particles each
/// step (fixed mesh charges do NOT exist here — this is the real cycle,
/// unlike the PRK's frozen mesh).
class MiniPic {
 public:
  MiniPic(MiniPicConfig config, std::vector<pic::Particle> particles);

  /// Advances one cycle and returns the post-step diagnostics.
  MiniPicDiagnostics step();

  /// Runs `steps` cycles; returns the diagnostics of the last one.
  MiniPicDiagnostics run(std::uint32_t steps);

  const std::vector<pic::Particle>& particles() const { return particles_; }
  const ScalarField& rho() const { return rho_; }
  const VectorField& e_field() const { return e_; }

  MiniPicDiagnostics diagnostics() const;

 private:
  void recompute_fields();

  MiniPicConfig config_;
  std::vector<pic::Particle> particles_;
  ScalarField rho_;
  ScalarField phi_;
  VectorField e_;
  CgResult last_solve_;
};

}  // namespace picprk::field
