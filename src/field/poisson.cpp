#include "field/poisson.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace picprk::field {

void apply_neg_laplacian(const ScalarField& in, ScalarField& out) {
  PICPRK_EXPECTS(in.cells() == out.cells());
  const std::int64_t c = in.cells();
  const double inv_h2 = 1.0 / (in.h() * in.h());
  for (std::int64_t j = 0; j < c; ++j) {
    for (std::int64_t i = 0; i < c; ++i) {
      const double center = in.at(i, j);
      out.at(i, j) = (4.0 * center - in.at(i - 1, j) - in.at(i + 1, j) -
                      in.at(i, j - 1) - in.at(i, j + 1)) *
                     inv_h2;
    }
  }
}

CgResult solve_poisson(const ScalarField& rho, ScalarField& phi, double rtol,
                       int max_iterations) {
  const pic::GridSpec grid(rho.cells(), rho.h());
  CgResult result;

  // Neutralise the RHS (project onto the operator's range).
  ScalarField b = rho;
  b.remove_mean();

  phi = ScalarField(grid);
  ScalarField r = b;                 // r = b − A·0
  ScalarField p = r;
  ScalarField ap(grid);

  const double b_norm = std::sqrt(ScalarField::dot(b, b));
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }
  double rr = ScalarField::dot(r, r);

  for (int it = 0; it < max_iterations; ++it) {
    apply_neg_laplacian(p, ap);
    const double p_ap = ScalarField::dot(p, ap);
    PICPRK_ASSERT_MSG(p_ap > 0.0, "CG broke down: operator not SPD on this subspace");
    const double alpha = rr / p_ap;
    phi.axpy(alpha, p);
    r.axpy(-alpha, ap);
    const double rr_new = ScalarField::dot(r, r);
    result.iterations = it + 1;
    result.residual_norm = std::sqrt(rr_new);
    if (result.residual_norm <= rtol * b_norm) {
      result.converged = true;
      break;
    }
    p.xpby(r, rr_new / rr);
    rr = rr_new;
    // Numerical drift can re-introduce a mean component; keep the
    // iterates in the operator's range.
    if ((it & 63) == 63) {
      phi.remove_mean();
      r.remove_mean();
      p.remove_mean();
    }
  }
  phi.remove_mean();
  PICPRK_DEBUG("poisson CG: " << result.iterations << " iterations, residual "
                              << result.residual_norm);
  return result;
}

void gradient_to_field(const ScalarField& phi, VectorField& e) {
  const std::int64_t c = phi.cells();
  const double inv_2h = 1.0 / (2.0 * phi.h());
  for (std::int64_t j = 0; j < c; ++j) {
    for (std::int64_t i = 0; i < c; ++i) {
      e.x.at(i, j) = -(phi.at(i + 1, j) - phi.at(i - 1, j)) * inv_2h;
      e.y.at(i, j) = -(phi.at(i, j + 1) - phi.at(i, j - 1)) * inv_2h;
    }
  }
}

}  // namespace picprk::field
