// Step (2) of the PIC cycle (paper §III-A): "Update the charge density
// at each mesh point by summing the contributions of the charged
// particles that belong to the cells of the mesh surrounding the point.
// This update is done via an extrapolation scheme." — the classic
// cloud-in-cell (CIC) bilinear deposition.
#pragma once

#include <cstdint>
#include <span>

#include "field/grid_field.hpp"
#include "pic/particle.hpp"
#include "pic/tiling.hpp"

namespace picprk::field {

/// Bilinear weights of a position inside its cell, for the four
/// surrounding mesh points (bl, br, tl, tr).
struct CicWeights {
  std::int64_t i = 0, j = 0;  ///< bottom-left mesh point
  double w_bl = 0, w_br = 0, w_tl = 0, w_tr = 0;
};

CicWeights cic_weights(double x, double y, const pic::GridSpec& grid);

/// Deposits the particles' charges onto `rho` (accumulating; call
/// rho.fill(0) first for a fresh density). Each particle spreads q/h²
/// bilinearly over its cell's four corner points, so the field integral
/// ∑ρ·h² equals the total charge exactly.
void deposit_cic(std::span<const pic::Particle> particles, const pic::GridSpec& grid,
                 ScalarField& rho);

/// Tiled SoA deposition. All particles of a tile share one cell, so the
/// four target mesh points are loop invariants: contributions accumulate
/// into four register sums and touch the field once per tile — a
/// per-tile broadcast instead of a per-particle 4-point scatter (no
/// bounds-checked field access in the inner loop). Per-particle weights
/// are computed exactly as cic_weights does, but mesh points receive
/// their four per-tile partial sums in tile order, so totals can differ
/// from the AoS path in the last ulps (the field integral contract
/// holds either way). Requires a fresh index; rows in the index tail go
/// through the scalar path.
void deposit_cic(const pic::ParticleSoA& soa, const pic::TileIndex& tiles,
                 const pic::GridSpec& grid, ScalarField& rho);

}  // namespace picprk::field
