#include "field/dist_field.hpp"

#include "util/assert.hpp"

namespace picprk::field {

namespace {
// Halo-traffic tags, from the registry in comm/message.hpp.
using comm::kEastwardTag;
using comm::kNorthwardTag;
using comm::kSouthwardTag;
using comm::kWestwardTag;
}  // namespace

DistributedField::DistributedField(const pic::GridSpec& grid,
                                   const par::Decomposition2D& decomp, int rank)
    : decomp_(&decomp), rank_(rank), cells_(grid.cells) {
  const pic::CellRegion block = decomp.block_of(rank);
  x0_ = block.x0;
  y0_ = block.y0;
  width_ = block.width();
  height_ = block.height();
  const auto& cart = decomp.cart();
  west_ = cart.neighbor(rank, -1, 0);
  east_ = cart.neighbor(rank, 1, 0);
  south_ = cart.neighbor(rank, 0, -1);
  north_ = cart.neighbor(rank, 0, 1);
  values_.assign(static_cast<std::size_t>((width_ + 2) * (height_ + 2)), 0.0);
}

double& DistributedField::at(std::int64_t gi, std::int64_t gj) {
  std::int64_t li = pic::wrap_index(gi, cells_) - x0_;
  std::int64_t lj = pic::wrap_index(gj, cells_) - y0_;
  if (li < -1) li += cells_;
  if (li > width_) li -= cells_;
  if (lj < -1) lj += cells_;
  if (lj > height_) lj -= cells_;
  PICPRK_ASSERT_MSG(li >= -1 && li <= width_ && lj >= -1 && lj <= height_,
                    "point outside owned block and halo ring");
  return local(li, lj);
}

double DistributedField::at(std::int64_t gi, std::int64_t gj) const {
  return const_cast<DistributedField*>(this)->at(gi, gj);
}

bool DistributedField::owns(std::int64_t gi, std::int64_t gj) const {
  const std::int64_t i = pic::wrap_index(gi, cells_);
  const std::int64_t j = pic::wrap_index(gj, cells_);
  return i >= x0_ && i < x0_ + width_ && j >= y0_ && j < y0_ + height_;
}

void DistributedField::fill(double v) {
  std::fill(values_.begin(), values_.end(), v);
}

double DistributedField::local_sum() const {
  double s = 0.0;
  for (std::int64_t lj = 0; lj < height_; ++lj) {
    for (std::int64_t li = 0; li < width_; ++li) s += local(li, lj);
  }
  return s;
}

double DistributedField::local_dot(const DistributedField& a, const DistributedField& b) {
  PICPRK_EXPECTS(a.width_ == b.width_ && a.height_ == b.height_);
  double s = 0.0;
  for (std::int64_t lj = 0; lj < a.height_; ++lj) {
    for (std::int64_t li = 0; li < a.width_; ++li) s += a.local(li, lj) * b.local(li, lj);
  }
  return s;
}

void DistributedField::axpy(double alpha, const DistributedField& x) {
  PICPRK_EXPECTS(width_ == x.width_ && height_ == x.height_);
  for (std::int64_t lj = 0; lj < height_; ++lj) {
    for (std::int64_t li = 0; li < width_; ++li) local(li, lj) += alpha * x.local(li, lj);
  }
}

void DistributedField::xpby(const DistributedField& x, double beta) {
  PICPRK_EXPECTS(width_ == x.width_ && height_ == x.height_);
  for (std::int64_t lj = 0; lj < height_; ++lj) {
    for (std::int64_t li = 0; li < width_; ++li) {
      local(li, lj) = x.local(li, lj) + beta * local(li, lj);
    }
  }
}

void DistributedField::shift(double delta) {
  for (std::int64_t lj = 0; lj < height_; ++lj) {
    for (std::int64_t li = 0; li < width_; ++li) local(li, lj) += delta;
  }
}

void DistributedField::halo_exchange(comm::Comm& comm) {
  last_halo_bytes_ = 0;

  // Phase X: owned edge columns travel to x-neighbors.
  if (west_ == rank_) {
    for (std::int64_t lj = 0; lj < height_; ++lj) {
      local(-1, lj) = local(width_ - 1, lj);
      local(width_, lj) = local(0, lj);
    }
  } else {
    std::vector<double>& west_edge = edge_a_;
    std::vector<double>& east_edge = edge_b_;
    west_edge.resize(static_cast<std::size_t>(height_));
    east_edge.resize(static_cast<std::size_t>(height_));
    for (std::int64_t lj = 0; lj < height_; ++lj) {
      west_edge[static_cast<std::size_t>(lj)] = local(0, lj);
      east_edge[static_cast<std::size_t>(lj)] = local(width_ - 1, lj);
    }
    comm.send(west_edge, west_, kWestwardTag);
    comm.send(east_edge, east_, kEastwardTag);
    last_halo_bytes_ += (west_edge.size() + east_edge.size()) * sizeof(double);
    const std::size_t n_east = comm.recv_into(from_a_, east_, kWestwardTag);
    const std::size_t n_west = comm.recv_into(from_b_, west_, kEastwardTag);
    const auto& from_east = from_a_;
    const auto& from_west = from_b_;
    PICPRK_ASSERT(n_east == static_cast<std::size_t>(height_));
    PICPRK_ASSERT(n_west == static_cast<std::size_t>(height_));
    for (std::int64_t lj = 0; lj < height_; ++lj) {
      local(width_, lj) = from_east[static_cast<std::size_t>(lj)];
      local(-1, lj) = from_west[static_cast<std::size_t>(lj)];
    }
  }

  // Phase Y: full rows including the x-halos, so corners propagate.
  if (south_ == rank_) {
    for (std::int64_t li = -1; li <= width_; ++li) {
      local(li, -1) = local(li, height_ - 1);
      local(li, height_) = local(li, 0);
    }
  } else {
    std::vector<double>& south_edge = edge_a_;
    std::vector<double>& north_edge = edge_b_;
    south_edge.resize(static_cast<std::size_t>(width_ + 2));
    north_edge.resize(static_cast<std::size_t>(width_ + 2));
    for (std::int64_t li = -1; li <= width_; ++li) {
      south_edge[static_cast<std::size_t>(li + 1)] = local(li, 0);
      north_edge[static_cast<std::size_t>(li + 1)] = local(li, height_ - 1);
    }
    comm.send(south_edge, south_, kSouthwardTag);
    comm.send(north_edge, north_, kNorthwardTag);
    last_halo_bytes_ += (south_edge.size() + north_edge.size()) * sizeof(double);
    const std::size_t n_north = comm.recv_into(from_a_, north_, kSouthwardTag);
    const std::size_t n_south = comm.recv_into(from_b_, south_, kNorthwardTag);
    const auto& from_north = from_a_;
    const auto& from_south = from_b_;
    PICPRK_ASSERT(n_north == static_cast<std::size_t>(width_ + 2));
    PICPRK_ASSERT(n_south == static_cast<std::size_t>(width_ + 2));
    for (std::int64_t li = -1; li <= width_; ++li) {
      local(li, height_) = from_north[static_cast<std::size_t>(li + 1)];
      local(li, -1) = from_south[static_cast<std::size_t>(li + 1)];
    }
  }
}

void DistributedField::halo_fold(comm::Comm& comm) {
  last_halo_bytes_ = 0;

  // Phase Y first (the reverse of exchange): halo rows — including their
  // x-halo corners — fold into the y-neighbors' x-halos/owned rows.
  if (south_ != rank_) {
    std::vector<double>& to_south = edge_a_;
    std::vector<double>& to_north = edge_b_;
    to_south.resize(static_cast<std::size_t>(width_ + 2));
    to_north.resize(static_cast<std::size_t>(width_ + 2));
    for (std::int64_t li = -1; li <= width_; ++li) {
      to_south[static_cast<std::size_t>(li + 1)] = local(li, -1);
      to_north[static_cast<std::size_t>(li + 1)] = local(li, height_);
      local(li, -1) = 0.0;
      local(li, height_) = 0.0;
    }
    comm.send(to_south, south_, kSouthwardTag);
    comm.send(to_north, north_, kNorthwardTag);
    last_halo_bytes_ += (to_south.size() + to_north.size()) * sizeof(double);
    comm.recv_into(from_a_, north_, kSouthwardTag);
    comm.recv_into(from_b_, south_, kNorthwardTag);
    const auto& from_north = from_a_;
    const auto& from_south = from_b_;
    for (std::int64_t li = -1; li <= width_; ++li) {
      local(li, height_ - 1) += from_north[static_cast<std::size_t>(li + 1)];
      local(li, 0) += from_south[static_cast<std::size_t>(li + 1)];
    }
  }
  // With a self y-neighbor, at() already aliased halo writes onto owned
  // points, so there is nothing to fold.

  // Phase X: halo columns fold into x-neighbors' owned edge columns.
  if (west_ != rank_) {
    std::vector<double>& to_west = edge_a_;
    std::vector<double>& to_east = edge_b_;
    to_west.resize(static_cast<std::size_t>(height_));
    to_east.resize(static_cast<std::size_t>(height_));
    for (std::int64_t lj = 0; lj < height_; ++lj) {
      to_west[static_cast<std::size_t>(lj)] = local(-1, lj);
      to_east[static_cast<std::size_t>(lj)] = local(width_, lj);
      local(-1, lj) = 0.0;
      local(width_, lj) = 0.0;
    }
    comm.send(to_west, west_, kWestwardTag);
    comm.send(to_east, east_, kEastwardTag);
    last_halo_bytes_ += (to_west.size() + to_east.size()) * sizeof(double);
    comm.recv_into(from_a_, east_, kWestwardTag);
    comm.recv_into(from_b_, west_, kEastwardTag);
    const auto& from_east = from_a_;
    const auto& from_west = from_b_;
    for (std::int64_t lj = 0; lj < height_; ++lj) {
      local(width_ - 1, lj) += from_east[static_cast<std::size_t>(lj)];
      local(0, lj) += from_west[static_cast<std::size_t>(lj)];
    }
  }
}

}  // namespace picprk::field
