// Distributed-memory fields over threadcomm: block-decomposed mesh
// points with one-deep halos, halo exchange (reads) and halo folding
// (accumulations). This is the substrate for the distributed PIC cycle —
// the paper's §III-A challenge list names exactly these patterns:
// "efficient atomic updates of the charge densities" (halo folding) and
// "a scalable parallel solver" (the distributed CG built on top).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "comm/comm.hpp"
#include "par/decomposition.hpp"
#include "pic/geometry.hpp"

namespace picprk::field {

/// A rank's block of a C×C periodic mesh-point field, with a one-point
/// halo ring. The decomposition partitions point indices exactly like
/// the particle drivers partition cells (point (i,j) belongs to the rank
/// owning cell (i,j)).
class DistributedField {
 public:
  DistributedField(const pic::GridSpec& grid, const par::Decomposition2D& decomp,
                   int rank);

  std::int64_t x0() const { return x0_; }
  std::int64_t y0() const { return y0_; }
  std::int64_t width() const { return width_; }    ///< owned points in x
  std::int64_t height() const { return height_; }  ///< owned points in y

  /// Access by *global* point index; valid for owned points and the
  /// one-deep halo ring around them (indices are taken modulo C).
  double& at(std::int64_t gi, std::int64_t gj);
  double at(std::int64_t gi, std::int64_t gj) const;

  bool owns(std::int64_t gi, std::int64_t gj) const;

  void fill(double v);

  /// Sum over owned points only (no halo double counting).
  double local_sum() const;

  /// Dot product over owned points.
  static double local_dot(const DistributedField& a, const DistributedField& b);

  /// y += alpha·x, owned points.
  void axpy(double alpha, const DistributedField& x);

  /// this = x + beta·this, owned points.
  void xpby(const DistributedField& x, double beta);

  /// Subtract a constant from owned points.
  void shift(double delta);

  /// Fills the halo ring from the neighbors' owned values (collective;
  /// two-phase x-then-y exchange so corners arrive too).
  void halo_exchange(comm::Comm& comm);

  /// Adds the halo-ring accumulations into the neighbors' owned values
  /// and clears the halos (collective; the reverse of halo_exchange,
  /// used after CIC deposition).
  void halo_fold(comm::Comm& comm);

  /// Bytes moved by the last halo operation on this rank.
  std::uint64_t last_halo_bytes() const { return last_halo_bytes_; }

 private:
  double& local(std::int64_t li, std::int64_t lj) {
    return values_[static_cast<std::size_t>((lj + 1) * (width_ + 2) + (li + 1))];
  }
  double local(std::int64_t li, std::int64_t lj) const {
    return values_[static_cast<std::size_t>((lj + 1) * (width_ + 2) + (li + 1))];
  }

  const par::Decomposition2D* decomp_;
  int rank_;
  std::int64_t cells_;
  std::int64_t x0_, y0_, width_, height_;
  int west_, east_, north_, south_;  ///< neighbor ranks
  std::vector<double> values_;       ///< (width+2) × (height+2), halo ring
  std::uint64_t last_halo_bytes_ = 0;
  // Reusable staging for the per-step halo sends/receives (recv_into):
  // halo traffic is allocation-free after the first exchange.
  std::vector<double> edge_a_, edge_b_, from_a_, from_b_;
};

}  // namespace picprk::field
