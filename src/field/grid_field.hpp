// Periodic scalar/vector fields on the PRK mesh — the substrate for the
// full Particle-in-Cell computational cycle of paper §III-A. The PIC PRK
// deliberately strips steps (2)–(3) of the cycle (charge deposition and
// the field solve) to isolate load balancing; this module implements
// them anyway so the repository contains the complete application
// context the kernel abstracts (and the SpMV pattern the paper points
// at via the existing PRKs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pic/geometry.hpp"
#include "util/assert.hpp"

namespace picprk::field {

/// A scalar field sampled at the C×C mesh points of a periodic grid.
class ScalarField {
 public:
  ScalarField() = default;
  explicit ScalarField(const pic::GridSpec& grid)
      : cells_(grid.cells), h_(grid.h),
        values_(static_cast<std::size_t>(grid.cells * grid.cells), 0.0) {}

  std::int64_t cells() const { return cells_; }
  double h() const { return h_; }
  std::size_t size() const { return values_.size(); }

  /// Access with periodic index wrapping.
  double& at(std::int64_t i, std::int64_t j) {
    return values_[index(i, j)];
  }
  double at(std::int64_t i, std::int64_t j) const { return values_[index(i, j)]; }

  std::vector<double>& data() { return values_; }
  const std::vector<double>& data() const { return values_; }

  void fill(double v) { std::fill(values_.begin(), values_.end(), v); }

  double sum() const {
    double s = 0.0;
    for (double v : values_) s += v;
    return s;
  }

  double mean() const { return sum() / static_cast<double>(values_.size()); }

  /// Subtracts the mean (projects out the periodic Laplacian nullspace).
  void remove_mean() {
    const double m = mean();
    for (double& v : values_) v -= m;
  }

  /// Dot product (for the CG solver).
  static double dot(const ScalarField& a, const ScalarField& b) {
    PICPRK_EXPECTS(a.size() == b.size());
    double s = 0.0;
    for (std::size_t i = 0; i < a.values_.size(); ++i) s += a.values_[i] * b.values_[i];
    return s;
  }

  /// y += alpha * x
  void axpy(double alpha, const ScalarField& x) {
    PICPRK_EXPECTS(size() == x.size());
    for (std::size_t i = 0; i < values_.size(); ++i) values_[i] += alpha * x.values_[i];
  }

  /// this = x + beta * this  (for CG direction updates)
  void xpby(const ScalarField& x, double beta) {
    PICPRK_EXPECTS(size() == x.size());
    for (std::size_t i = 0; i < values_.size(); ++i) {
      values_[i] = x.values_[i] + beta * values_[i];
    }
  }

 private:
  std::size_t index(std::int64_t i, std::int64_t j) const {
    const std::int64_t ii = pic::wrap_index(i, cells_);
    const std::int64_t jj = pic::wrap_index(j, cells_);
    return static_cast<std::size_t>(jj * cells_ + ii);
  }

  std::int64_t cells_ = 0;
  double h_ = 1.0;
  std::vector<double> values_;
};

/// A 2-component vector field (the electric field E = −∇φ).
struct VectorField {
  ScalarField x;
  ScalarField y;

  VectorField() = default;
  explicit VectorField(const pic::GridSpec& grid) : x(grid), y(grid) {}
};

}  // namespace picprk::field
