// The distributed PIC cycle components: halo-based SpMV, distributed CG
// Poisson solve, gradient, CIC deposition with halo folding, and E-field
// interpolation — the "scalable parallel solver" and "atomic charge
// updates" challenges of paper §III-A realised over threadcomm.
#pragma once

#include <cstdint>
#include <span>

#include "comm/comm.hpp"
#include "field/dist_field.hpp"
#include "field/mini_pic.hpp"  // FieldSample
#include "field/poisson.hpp"
#include "pic/particle.hpp"

namespace picprk::field {

/// out = −∇² in (5-point, periodic); refreshes in's halos (collective).
void apply_neg_laplacian_distributed(comm::Comm& comm, DistributedField& in,
                                     DistributedField& out, double h);

/// Global sum over a distributed field (collective).
double global_sum(comm::Comm& comm, const DistributedField& f);

/// Global dot product (collective).
double global_dot(comm::Comm& comm, const DistributedField& a, const DistributedField& b);

/// Projects out the global mean (collective).
void remove_global_mean(comm::Comm& comm, DistributedField& f, std::int64_t cells);

/// Distributed CG for −∇²φ = ρ; same semantics as the serial
/// solve_poisson (RHS neutralised, φ zero-mean). Collective.
CgResult solve_poisson_distributed(comm::Comm& comm, const DistributedField& rho,
                                   DistributedField& phi, const pic::GridSpec& grid,
                                   double rtol = 1e-8, int max_iterations = 10000);

/// E = −∇φ (central differences); refreshes φ's halos. Collective.
void gradient_distributed(comm::Comm& comm, DistributedField& phi, DistributedField& ex,
                          DistributedField& ey, double h);

/// CIC deposition of this rank's particles followed by halo folding
/// (collective). rho must be zero-filled first.
void deposit_cic_distributed(comm::Comm& comm, std::span<const pic::Particle> particles,
                             const pic::GridSpec& grid, DistributedField& rho);

/// Bilinear E at a position owned by this rank (halos must be fresh).
FieldSample interpolate_distributed(const DistributedField& ex, const DistributedField& ey,
                                    double x, double y, const pic::GridSpec& grid);

}  // namespace picprk::field
