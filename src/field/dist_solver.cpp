#include "field/dist_solver.hpp"

#include <cmath>

#include "field/deposit.hpp"
#include "util/assert.hpp"

namespace picprk::field {

void apply_neg_laplacian_distributed(comm::Comm& comm, DistributedField& in,
                                     DistributedField& out, double h) {
  in.halo_exchange(comm);
  const double inv_h2 = 1.0 / (h * h);
  for (std::int64_t lj = 0; lj < in.height(); ++lj) {
    for (std::int64_t li = 0; li < in.width(); ++li) {
      const std::int64_t gi = in.x0() + li;
      const std::int64_t gj = in.y0() + lj;
      out.at(gi, gj) = (4.0 * in.at(gi, gj) - in.at(gi - 1, gj) - in.at(gi + 1, gj) -
                        in.at(gi, gj - 1) - in.at(gi, gj + 1)) *
                       inv_h2;
    }
  }
}

double global_sum(comm::Comm& comm, const DistributedField& f) {
  return comm.allreduce_value<double>(f.local_sum(),
                                      [](double a, double b) { return a + b; });
}

double global_dot(comm::Comm& comm, const DistributedField& a,
                  const DistributedField& b) {
  return comm.allreduce_value<double>(DistributedField::local_dot(a, b),
                                      [](double x, double y) { return x + y; });
}

void remove_global_mean(comm::Comm& comm, DistributedField& f, std::int64_t cells) {
  const double mean =
      global_sum(comm, f) / static_cast<double>(cells) / static_cast<double>(cells);
  f.shift(-mean);
}

CgResult solve_poisson_distributed(comm::Comm& comm, const DistributedField& rho,
                                   DistributedField& phi, const pic::GridSpec& grid,
                                   double rtol, int max_iterations) {
  CgResult result;

  DistributedField b = rho;
  remove_global_mean(comm, b, grid.cells);

  phi.fill(0.0);
  DistributedField r = b;
  DistributedField p = r;
  DistributedField ap = phi;  // same shape, zeroed below by the apply

  const double b_norm = std::sqrt(global_dot(comm, b, b));
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }
  double rr = global_dot(comm, r, r);

  for (int it = 0; it < max_iterations; ++it) {
    apply_neg_laplacian_distributed(comm, p, ap, grid.h);
    const double p_ap = global_dot(comm, p, ap);
    PICPRK_ASSERT_MSG(p_ap > 0.0, "distributed CG broke down");
    const double alpha = rr / p_ap;
    phi.axpy(alpha, p);
    r.axpy(-alpha, ap);
    const double rr_new = global_dot(comm, r, r);
    result.iterations = it + 1;
    result.residual_norm = std::sqrt(rr_new);
    if (result.residual_norm <= rtol * b_norm) {
      result.converged = true;
      break;
    }
    p.xpby(r, rr_new / rr);
    rr = rr_new;
    if ((it & 63) == 63) {
      remove_global_mean(comm, phi, grid.cells);
      remove_global_mean(comm, r, grid.cells);
      remove_global_mean(comm, p, grid.cells);
    }
  }
  remove_global_mean(comm, phi, grid.cells);
  return result;
}

void gradient_distributed(comm::Comm& comm, DistributedField& phi, DistributedField& ex,
                          DistributedField& ey, double h) {
  phi.halo_exchange(comm);
  const double inv_2h = 1.0 / (2.0 * h);
  for (std::int64_t lj = 0; lj < phi.height(); ++lj) {
    for (std::int64_t li = 0; li < phi.width(); ++li) {
      const std::int64_t gi = phi.x0() + li;
      const std::int64_t gj = phi.y0() + lj;
      ex.at(gi, gj) = -(phi.at(gi + 1, gj) - phi.at(gi - 1, gj)) * inv_2h;
      ey.at(gi, gj) = -(phi.at(gi, gj + 1) - phi.at(gi, gj - 1)) * inv_2h;
    }
  }
}

void deposit_cic_distributed(comm::Comm& comm, std::span<const pic::Particle> particles,
                             const pic::GridSpec& grid, DistributedField& rho) {
  const double inv_cell_area = 1.0 / (grid.h * grid.h);
  for (const pic::Particle& p : particles) {
    const CicWeights w = cic_weights(p.x, p.y, grid);
    const double q = p.q * inv_cell_area;
    rho.at(w.i, w.j) += q * w.w_bl;
    rho.at(w.i + 1, w.j) += q * w.w_br;
    rho.at(w.i, w.j + 1) += q * w.w_tl;
    rho.at(w.i + 1, w.j + 1) += q * w.w_tr;
  }
  rho.halo_fold(comm);
}

FieldSample interpolate_distributed(const DistributedField& ex, const DistributedField& ey,
                                    double x, double y, const pic::GridSpec& grid) {
  const CicWeights w = cic_weights(x, y, grid);
  FieldSample s;
  s.ex = ex.at(w.i, w.j) * w.w_bl + ex.at(w.i + 1, w.j) * w.w_br +
         ex.at(w.i, w.j + 1) * w.w_tl + ex.at(w.i + 1, w.j + 1) * w.w_tr;
  s.ey = ey.at(w.i, w.j) * w.w_bl + ey.at(w.i + 1, w.j) * w.w_br +
         ey.at(w.i, w.j + 1) * w.w_tl + ey.at(w.i + 1, w.j + 1) * w.w_tr;
  return s;
}

}  // namespace picprk::field
