#include "field/mini_pic.hpp"

#include "pic/geometry.hpp"
#include "util/assert.hpp"

namespace picprk::field {

FieldSample interpolate(const VectorField& e, double x, double y,
                        const pic::GridSpec& grid) {
  const CicWeights w = cic_weights(x, y, grid);
  FieldSample s;
  s.ex = e.x.at(w.i, w.j) * w.w_bl + e.x.at(w.i + 1, w.j) * w.w_br +
         e.x.at(w.i, w.j + 1) * w.w_tl + e.x.at(w.i + 1, w.j + 1) * w.w_tr;
  s.ey = e.y.at(w.i, w.j) * w.w_bl + e.y.at(w.i + 1, w.j) * w.w_br +
         e.y.at(w.i, w.j + 1) * w.w_tl + e.y.at(w.i + 1, w.j + 1) * w.w_tr;
  return s;
}

MiniPic::MiniPic(MiniPicConfig config, std::vector<pic::Particle> particles)
    : config_(config), particles_(std::move(particles)), rho_(config_.grid),
      phi_(config_.grid), e_(config_.grid) {
  PICPRK_EXPECTS(config_.dt > 0.0);
  PICPRK_EXPECTS(config_.mass > 0.0);
  recompute_fields();
}

void MiniPic::recompute_fields() {
  rho_.fill(0.0);
  deposit_cic(std::span<const pic::Particle>(particles_), config_.grid, rho_);
  last_solve_ = solve_poisson(rho_, phi_, config_.cg_rtol);
  gradient_to_field(phi_, e_);
}

MiniPicDiagnostics MiniPic::step() {
  const double dt = config_.dt;
  const double inv_m = 1.0 / config_.mass;
  const double length = config_.grid.length();

  // Step (1)+(4): gather E at each particle and push (kick-drift).
  for (pic::Particle& p : particles_) {
    const FieldSample s = interpolate(e_, p.x, p.y, config_.grid);
    p.vx += p.q * s.ex * inv_m * dt;
    p.vy += p.q * s.ey * inv_m * dt;
    p.x = pic::wrap(p.x + p.vx * dt, length);
    p.y = pic::wrap(p.y + p.vy * dt, length);
  }

  // Steps (2)+(3): new density and field for the next push.
  recompute_fields();
  return diagnostics();
}

MiniPicDiagnostics MiniPic::run(std::uint32_t steps) {
  MiniPicDiagnostics d = diagnostics();
  for (std::uint32_t s = 0; s < steps; ++s) d = step();
  return d;
}

MiniPicDiagnostics MiniPic::diagnostics() const {
  MiniPicDiagnostics d;
  for (const pic::Particle& p : particles_) {
    d.total_charge += p.q;
    d.momentum_x += config_.mass * p.vx;
    d.momentum_y += config_.mass * p.vy;
    d.kinetic_energy += 0.5 * config_.mass * (p.vx * p.vx + p.vy * p.vy);
  }
  const double cell_area = config_.grid.h * config_.grid.h;
  for (std::int64_t j = 0; j < config_.grid.cells; ++j) {
    for (std::int64_t i = 0; i < config_.grid.cells; ++i) {
      const double ex = e_.x.at(i, j);
      const double ey = e_.y.at(i, j);
      d.field_energy += 0.5 * (ex * ex + ey * ey) * cell_area;
    }
  }
  d.cg_iterations = last_solve_.iterations;
  d.cg_residual = last_solve_.residual_norm;
  return d;
}

}  // namespace picprk::field
