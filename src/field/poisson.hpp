// Step (3) of the PIC cycle (paper §III-A): "Compute the electric field
// at the mesh points by solving the field equation, using the charge
// densities" — the periodic Poisson problem  −∇²φ = ρ  solved with
// conjugate gradients. The paper notes that a CG-based solve spends its
// time in sparse matrix–vector products (the SpMV PRK); apply_laplacian
// is exactly that 5-point SpMV.
#pragma once

#include <cstdint>

#include "field/grid_field.hpp"

namespace picprk::field {

/// out = −∇² in  (5-point stencil, periodic boundaries). The operator is
/// symmetric positive semi-definite with the constants as nullspace.
void apply_neg_laplacian(const ScalarField& in, ScalarField& out);

struct CgResult {
  int iterations = 0;
  double residual_norm = 0.0;  ///< ‖ρ + ∇²φ‖₂ at exit
  bool converged = false;
};

/// Solves −∇²φ = ρ with CG to relative tolerance `rtol`. The right-hand
/// side is mean-neutralised first (a periodic domain must be charge
/// neutral; the alternating ±q mesh of the PRK is, by construction) and
/// φ is returned with zero mean.
CgResult solve_poisson(const ScalarField& rho, ScalarField& phi, double rtol = 1e-8,
                       int max_iterations = 10000);

/// E = −∇φ by central differences (periodic).
void gradient_to_field(const ScalarField& phi, VectorField& e);

}  // namespace picprk::field
