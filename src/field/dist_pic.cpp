#include "field/dist_pic.hpp"

#include "par/exchange.hpp"
#include "pic/geometry.hpp"

namespace picprk::field {

DistributedMiniPic::DistributedMiniPic(comm::Comm& comm, MiniPicConfig config,
                                       std::vector<pic::Particle> particles)
    : comm_(comm), config_(config), cart_(comm.size()),
      decomp_(config_.grid, cart_), particles_(std::move(particles)),
      rho_(config_.grid, decomp_, comm.rank()), phi_(config_.grid, decomp_, comm.rank()),
      ex_(config_.grid, decomp_, comm.rank()), ey_(config_.grid, decomp_, comm.rank()) {
  // Route the initial particles to their owners.
  const auto stats = par::exchange_particles(comm_, decomp_, particles_);
  particles_exchanged_ += stats.sent;
  recompute_fields();
}

void DistributedMiniPic::recompute_fields() {
  rho_.fill(0.0);
  deposit_cic_distributed(comm_, std::span<const pic::Particle>(particles_), config_.grid,
                          rho_);
  last_solve_ = solve_poisson_distributed(comm_, rho_, phi_, config_.grid, config_.cg_rtol);
  gradient_distributed(comm_, phi_, ex_, ey_, config_.grid.h);
  // Fresh E halos for the next gather (particles read points up to one
  // beyond the owned block).
  ex_.halo_exchange(comm_);
  ey_.halo_exchange(comm_);
}

MiniPicDiagnostics DistributedMiniPic::step() {
  const double dt = config_.dt;
  const double inv_m = 1.0 / config_.mass;
  const double length = config_.grid.length();

  for (pic::Particle& p : particles_) {
    const FieldSample s = interpolate_distributed(ex_, ey_, p.x, p.y, config_.grid);
    p.vx += p.q * s.ex * inv_m * dt;
    p.vy += p.q * s.ey * inv_m * dt;
    p.x = pic::wrap(p.x + p.vx * dt, length);
    p.y = pic::wrap(p.y + p.vy * dt, length);
  }
  const auto stats = par::exchange_particles(comm_, decomp_, particles_);
  particles_exchanged_ += stats.sent;

  recompute_fields();
  return diagnostics();
}

MiniPicDiagnostics DistributedMiniPic::run(std::uint32_t steps) {
  MiniPicDiagnostics d = diagnostics();
  for (std::uint32_t s = 0; s < steps; ++s) d = step();
  return d;
}

MiniPicDiagnostics DistributedMiniPic::diagnostics() {
  struct Packed {
    double charge, px, py, kinetic, field;
  };
  Packed mine{0, 0, 0, 0, 0};
  for (const pic::Particle& p : particles_) {
    mine.charge += p.q;
    mine.px += config_.mass * p.vx;
    mine.py += config_.mass * p.vy;
    mine.kinetic += 0.5 * config_.mass * (p.vx * p.vx + p.vy * p.vy);
  }
  const double cell_area = config_.grid.h * config_.grid.h;
  for (std::int64_t lj = 0; lj < ex_.height(); ++lj) {
    for (std::int64_t li = 0; li < ex_.width(); ++li) {
      const std::int64_t gi = ex_.x0() + li;
      const std::int64_t gj = ex_.y0() + lj;
      const double x = ex_.at(gi, gj);
      const double y = ey_.at(gi, gj);
      mine.field += 0.5 * (x * x + y * y) * cell_area;
    }
  }
  const Packed total = comm_.allreduce_value<Packed>(mine, [](Packed a, Packed b) {
    return Packed{a.charge + b.charge, a.px + b.px, a.py + b.py, a.kinetic + b.kinetic,
                  a.field + b.field};
  });
  MiniPicDiagnostics d;
  d.total_charge = total.charge;
  d.momentum_x = total.px;
  d.momentum_y = total.py;
  d.kinetic_energy = total.kinetic;
  d.field_energy = total.field;
  d.cg_iterations = last_solve_.iterations;
  d.cg_residual = last_solve_.residual_norm;
  return d;
}

}  // namespace picprk::field
