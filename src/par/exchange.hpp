// Particle exchange: after the move phase (or after a decomposition
// change) every rank routes the particles that no longer belong to its
// block to their new owner (paper §IV-A: "Each processor sends the
// particles that left its subdomain to the appropriate remote
// processor"). Routing is by owner lookup, not nearest-neighbor only, so
// arbitrary particle speeds (large k, m) are handled.
//
// Hot path: keepers are compacted in place (in steady state almost every
// particle stays put), emigrants are counting-sorted into one flat
// buffer grouped by destination rank and shipped with the flat-buffer
// `Comm::alltoallv` (counts + one packed payload per non-empty peer,
// buffers moved into the mailbox, byte buffers recycled through a pool).
// All scratch lives in a caller-owned ExchangeBuffers workspace, so
// steady-state exchange performs no heap allocation —
// `ExchangeBuffers::allocations()` is the test hook that proves it.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "comm/comm.hpp"
#include "obs/registry.hpp"
#include "par/decomposition.hpp"
#include "pic/particle.hpp"
#include "pic/tiling.hpp"

namespace picprk::par {

struct ExchangeStats {
  std::uint64_t sent = 0;      ///< particles shipped to other ranks
  std::uint64_t received = 0;  ///< particles received from other ranks
  std::uint64_t bytes = 0;     ///< payload bytes sent by this rank
};

/// Whole-run exchange traffic, accumulated by every exchange through a
/// workspace. Plain integers (not atomics): the workspace is rank-local,
/// and checkpoint/restore can copy the struct wholesale. Replaces the
/// per-driver `sent/bytes` tally locals the drivers used to carry.
struct ExchangeTotals {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t bytes = 0;
};

/// Reusable per-rank exchange workspace. Owned by a driver and passed to
/// every exchange_particles call; all buffers grow to their steady-state
/// high-water mark during warm-up and are reused afterwards.
/// `allocations()` counts every buffer growth (including the byte-buffer
/// pool shared with the comm layer), so a test can assert that it stops
/// increasing once traffic reaches steady state.
struct ExchangeBuffers {
  std::vector<std::uint64_t> send_counts;   ///< per-destination particle counts
  std::vector<std::uint64_t> recv_counts;   ///< per-source particle counts
  std::vector<std::uint64_t> cursor;        ///< counting-sort write cursors
  std::vector<int> owner;                   ///< per-particle destination cache
  std::vector<pic::Particle> packed;        ///< emigrant payload grouped by destination
  std::vector<pic::Particle> received;      ///< immigrants, appended to `mine`
  comm::BufferPool pool;                    ///< recycled message byte buffers

  /// Whole-run traffic; every exchange through this workspace adds its
  /// ExchangeStats here (and into the optional obs counters below).
  ExchangeTotals totals;

  /// Optional telemetry mirrors (obs::Registry handles); null = dark.
  /// Set at driver setup from a StepInstruments bundle.
  obs::Counter* sent_counter = nullptr;
  obs::Counter* received_counter = nullptr;
  obs::Counter* bytes_counter = nullptr;

  /// Folds one exchange's stats into the running totals + mirrors.
  void note_traffic(const ExchangeStats& stats) {
    totals.sent += stats.sent;
    totals.received += stats.received;
    totals.bytes += stats.bytes;
    if (sent_counter != nullptr) sent_counter->add(stats.sent);
    if (received_counter != nullptr) received_counter->add(stats.received);
    if (bytes_counter != nullptr) bytes_counter->add(stats.bytes);
  }

  /// Total buffer growths so far (workspace vectors + pooled byte
  /// buffers). Constant across steps once traffic is steady.
  std::uint64_t allocations() const { return growths_ + pool.allocations(); }

  /// Resizes `v` to `n`, counting a growth when capacity was
  /// insufficient. Grows with 50% headroom so bounded step-to-step
  /// fluctuation settles after one growth.
  template <typename V>
  void fit(V& v, std::size_t n) {
    if (v.capacity() < n) {
      ++growths_;
      v.reserve(n + n / 2);
    }
    v.resize(n);
  }

  /// Records a buffer growth observed outside `fit` (e.g. `received`
  /// grown inside the collective).
  void note_growth() { ++growths_; }

 private:
  std::uint64_t growths_ = 0;
};

/// Generalised flat-buffer exchange for arbitrary ownership:
/// `owner_of(x, y)` maps a position to its rank. Post-condition:
/// owner_of(p) == my rank for every particle kept. The result order is
/// deterministic: keepers first in their original order (they never
/// leave `mine` — in steady state the overwhelming majority of particles
/// stay put, so only emigrants are packed and shipped), then immigrants
/// in ascending source-rank order.
template <typename OwnerFn>
ExchangeStats exchange_particles_by(comm::Comm& comm, OwnerFn&& owner_of,
                                    std::vector<pic::Particle>& mine,
                                    ExchangeBuffers& buffers) {
  const auto p = static_cast<std::size_t>(comm.size());
  const auto me = static_cast<std::size_t>(comm.rank());
  const std::size_t n = mine.size();

  // Pass 1: destination of every particle + per-destination counts.
  buffers.fit(buffers.owner, n);
  buffers.fit(buffers.send_counts, p);
  buffers.fit(buffers.cursor, p);
  buffers.fit(buffers.recv_counts, p);
  std::fill(buffers.send_counts.begin(), buffers.send_counts.end(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const int dst = owner_of(mine[i].x, mine[i].y);
    buffers.owner[i] = dst;
    ++buffers.send_counts[static_cast<std::size_t>(dst)];
  }
  const std::uint64_t keepers = buffers.send_counts[me];
  buffers.send_counts[me] = 0;  // keepers are not traffic

  // Pass 2: compact keepers in place (stable) and counting-sort the
  // emigrants into the packed send buffer, grouped by destination.
  std::uint64_t offset = 0;
  for (std::size_t r = 0; r < p; ++r) {
    buffers.cursor[r] = offset;
    offset += buffers.send_counts[r];
  }
  buffers.fit(buffers.packed, n - static_cast<std::size_t>(keepers));
  std::size_t w = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (buffers.owner[i] == static_cast<int>(me)) {
      if (w != i) mine[w] = mine[i];
      ++w;
    } else {
      buffers.packed[buffers.cursor[static_cast<std::size_t>(buffers.owner[i])]++] =
          mine[i];
    }
  }
  mine.resize(w);  // shrink: never reallocates

  const std::size_t recv_capacity = buffers.received.capacity();
  comm.alltoallv(std::span<const pic::Particle>(buffers.packed),
                 std::span<const std::uint64_t>(buffers.send_counts), buffers.received,
                 buffers.recv_counts, &buffers.pool);
  if (buffers.received.capacity() > recv_capacity) buffers.note_growth();

  const std::size_t mine_capacity = mine.capacity();
  mine.insert(mine.end(), buffers.received.begin(), buffers.received.end());
  if (mine.capacity() > mine_capacity) buffers.note_growth();

  ExchangeStats stats;
  stats.sent = static_cast<std::uint64_t>(n) - keepers;
  stats.bytes = stats.sent * sizeof(pic::Particle);
  stats.received = buffers.received.size();
  buffers.note_traffic(stats);
  return stats;
}

/// Convenience overload with a throwaway workspace (tests, one-shot
/// callers). Drivers should own an ExchangeBuffers instead.
template <typename OwnerFn>
ExchangeStats exchange_particles_by(comm::Comm& comm, OwnerFn&& owner_of,
                                    std::vector<pic::Particle>& mine) {
  ExchangeBuffers buffers;
  return exchange_particles_by(comm, std::forward<OwnerFn>(owner_of), mine, buffers);
}

/// SoA-store exchange: same protocol and wire format as the AoS
/// overload — emigrants are packed into the flat 80-byte-record
/// alltoallv payload, immigrants are unpacked onto the end of the store
/// — with the keeper compaction applied column-wise. The result order
/// contract is unchanged (keepers stable-first, then immigrants by
/// source rank), so a TileIndex over the store survives: pass it and
/// its tile ranges are shrunk in step with the compaction (immigrants
/// land in the index tail); pass nullptr when no index is maintained.
template <typename OwnerFn>
ExchangeStats exchange_particles_by(comm::Comm& comm, OwnerFn&& owner_of,
                                    pic::ParticleSoA& mine, pic::TileIndex* tiles,
                                    ExchangeBuffers& buffers) {
  const auto p = static_cast<std::size_t>(comm.size());
  const auto me = static_cast<std::size_t>(comm.rank());
  const std::size_t n = mine.size();

  // Pass 1: destination of every row + per-destination counts.
  buffers.fit(buffers.owner, n);
  buffers.fit(buffers.send_counts, p);
  buffers.fit(buffers.cursor, p);
  buffers.fit(buffers.recv_counts, p);
  std::fill(buffers.send_counts.begin(), buffers.send_counts.end(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const int dst = owner_of(mine.x[i], mine.y[i]);
    buffers.owner[i] = dst;
    ++buffers.send_counts[static_cast<std::size_t>(dst)];
  }
  const std::uint64_t keepers = buffers.send_counts[me];
  buffers.send_counts[me] = 0;  // keepers are not traffic

  // Pass 2: compact keepers in place (stable, all columns in lockstep)
  // and counting-sort the emigrants into the packed AoS wire buffer.
  std::uint64_t offset = 0;
  for (std::size_t r = 0; r < p; ++r) {
    buffers.cursor[r] = offset;
    offset += buffers.send_counts[r];
  }
  buffers.fit(buffers.packed, n - static_cast<std::size_t>(keepers));
  std::size_t w = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (buffers.owner[i] == static_cast<int>(me)) {
      mine.move_row(w, i);
      ++w;
    } else {
      buffers.packed[buffers.cursor[static_cast<std::size_t>(buffers.owner[i])]++] =
          mine.get(i);
    }
  }
  mine.truncate(w);  // shrink: never reallocates
  if (tiles != nullptr) {
    tiles->compact_ranges(std::span<const int>(buffers.owner.data(), n),
                          static_cast<int>(me));
  }

  const std::size_t recv_capacity = buffers.received.capacity();
  comm.alltoallv(std::span<const pic::Particle>(buffers.packed),
                 std::span<const std::uint64_t>(buffers.send_counts), buffers.received,
                 buffers.recv_counts, &buffers.pool);
  if (buffers.received.capacity() > recv_capacity) buffers.note_growth();

  const std::size_t mine_capacity = mine.capacity();
  mine.append(std::span<const pic::Particle>(buffers.received));
  if (mine.capacity() > mine_capacity) buffers.note_growth();

  ExchangeStats stats;
  stats.sent = static_cast<std::uint64_t>(n) - keepers;
  stats.bytes = stats.sent * sizeof(pic::Particle);
  stats.received = buffers.received.size();
  buffers.note_traffic(stats);
  return stats;
}

/// Routes emigrants in `mine` to their owners and appends immigrants.
/// Collective over `comm`. Post-condition: every particle in `mine`
/// belongs to this rank's block (verified exhaustively only under
/// PICPRK_EXPENSIVE_CHECKS builds — the O(n) sweep would distort release
/// timings).
ExchangeStats exchange_particles(comm::Comm& comm, const Decomposition2D& decomp,
                                 std::vector<pic::Particle>& mine,
                                 ExchangeBuffers& buffers);

/// Convenience overload with a throwaway workspace.
ExchangeStats exchange_particles(comm::Comm& comm, const Decomposition2D& decomp,
                                 std::vector<pic::Particle>& mine);

/// SoA-store variant of exchange_particles; `tiles` may be null.
ExchangeStats exchange_particles(comm::Comm& comm, const Decomposition2D& decomp,
                                 pic::ParticleSoA& mine, pic::TileIndex* tiles,
                                 ExchangeBuffers& buffers);

}  // namespace picprk::par
