// Particle exchange: after the move phase (or after a decomposition
// change) every rank routes the particles that no longer belong to its
// block to their new owner (paper §IV-A: "Each processor sends the
// particles that left its subdomain to the appropriate remote
// processor"). Routing is by owner lookup, not nearest-neighbor only, so
// arbitrary particle speeds (large k, m) are handled.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/comm.hpp"
#include "par/decomposition.hpp"
#include "pic/particle.hpp"

namespace picprk::par {

struct ExchangeStats {
  std::uint64_t sent = 0;      ///< particles shipped to other ranks
  std::uint64_t received = 0;  ///< particles received from other ranks
  std::uint64_t bytes = 0;     ///< payload bytes sent by this rank
};

/// Routes emigrants in `mine` to their owners and appends immigrants.
/// Collective over `comm`. Post-condition: every particle in `mine`
/// belongs to this rank's block.
ExchangeStats exchange_particles(comm::Comm& comm, const Decomposition2D& decomp,
                                 std::vector<pic::Particle>& mine);

/// Generalised exchange for arbitrary ownership (e.g. the irregular
/// 8-neighbor scheme): `owner(x, y)` maps a position to its rank.
/// Post-condition: owner(p) == my rank for every particle kept.
template <typename OwnerFn>
ExchangeStats exchange_particles_by(comm::Comm& comm, OwnerFn&& owner,
                                    std::vector<pic::Particle>& mine) {
  const int p = comm.size();
  const int me = comm.rank();
  std::vector<std::vector<pic::Particle>> outgoing(static_cast<std::size_t>(p));
  std::vector<pic::Particle> keep;
  keep.reserve(mine.size());
  for (const pic::Particle& particle : mine) {
    const int dst = owner(particle.x, particle.y);
    if (dst == me) {
      keep.push_back(particle);
    } else {
      outgoing[static_cast<std::size_t>(dst)].push_back(particle);
    }
  }
  ExchangeStats stats;
  for (int r = 0; r < p; ++r) {
    if (r == me) continue;
    stats.sent += outgoing[static_cast<std::size_t>(r)].size();
    stats.bytes += outgoing[static_cast<std::size_t>(r)].size() * sizeof(pic::Particle);
  }
  auto incoming = comm.alltoall(outgoing);
  mine = std::move(keep);
  for (int r = 0; r < p; ++r) {
    if (r == me) continue;
    stats.received += incoming[static_cast<std::size_t>(r)].size();
    mine.insert(mine.end(), incoming[static_cast<std::size_t>(r)].begin(),
                incoming[static_cast<std::size_t>(r)].end());
  }
  return stats;
}

}  // namespace picprk::par
