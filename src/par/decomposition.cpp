#include "par/decomposition.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace picprk::par {

Decomposition2D::Decomposition2D(const pic::GridSpec& grid, const comm::Cart2D& cart)
    : grid_(grid), cart_(cart) {
  PICPRK_EXPECTS(grid.cells >= cart.px());
  PICPRK_EXPECTS(grid.cells >= cart.py());
  x_bounds_.resize(static_cast<std::size_t>(cart.px()) + 1);
  y_bounds_.resize(static_cast<std::size_t>(cart.py()) + 1);
  for (int i = 0; i <= cart.px(); ++i) {
    x_bounds_[static_cast<std::size_t>(i)] =
        i == cart.px() ? grid.cells : comm::block_range(grid.cells, cart.px(), i).lo;
  }
  for (int j = 0; j <= cart.py(); ++j) {
    y_bounds_[static_cast<std::size_t>(j)] =
        j == cart.py() ? grid.cells : comm::block_range(grid.cells, cart.py(), j).lo;
  }
}

void Decomposition2D::check_bounds(const std::vector<std::int64_t>& b, std::int64_t cells) {
  PICPRK_EXPECTS(b.size() >= 2);
  PICPRK_EXPECTS(b.front() == 0);
  PICPRK_EXPECTS(b.back() == cells);
  for (std::size_t i = 1; i < b.size(); ++i) PICPRK_EXPECTS(b[i] > b[i - 1]);
}

void Decomposition2D::set_x_bounds(std::vector<std::int64_t> xb) {
  PICPRK_EXPECTS(xb.size() == x_bounds_.size());
  check_bounds(xb, grid_.cells);
  x_bounds_ = std::move(xb);
}

void Decomposition2D::set_y_bounds(std::vector<std::int64_t> yb) {
  PICPRK_EXPECTS(yb.size() == y_bounds_.size());
  check_bounds(yb, grid_.cells);
  y_bounds_ = std::move(yb);
}

pic::CellRegion Decomposition2D::block_of(int rank) const {
  const auto [cx, cy] = cart_.coords_of(rank);
  return pic::CellRegion{x_bounds_[static_cast<std::size_t>(cx)],
                         x_bounds_[static_cast<std::size_t>(cx) + 1],
                         y_bounds_[static_cast<std::size_t>(cy)],
                         y_bounds_[static_cast<std::size_t>(cy) + 1]};
}

int Decomposition2D::owner_of_cell(std::int64_t cx, std::int64_t cy) const {
  PICPRK_EXPECTS(cx >= 0 && cx < grid_.cells);
  PICPRK_EXPECTS(cy >= 0 && cy < grid_.cells);
  // upper_bound gives the first boundary > cx; its predecessor's index is
  // the owning column.
  const auto ix = std::upper_bound(x_bounds_.begin(), x_bounds_.end(), cx);
  const auto iy = std::upper_bound(y_bounds_.begin(), y_bounds_.end(), cy);
  const int px_idx = static_cast<int>(ix - x_bounds_.begin()) - 1;
  const int py_idx = static_cast<int>(iy - y_bounds_.begin()) - 1;
  return cart_.rank_of(px_idx, py_idx);
}

int Decomposition2D::owner_of_position(double x, double y) const {
  return owner_of_cell(grid_.cell_of(x), grid_.cell_of(y));
}

}  // namespace picprk::par
