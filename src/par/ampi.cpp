#include "par/ampi.hpp"

#include <memory>

#include "ft/checkpoint.hpp"
#include "ft/fault.hpp"
#include "par/pic_vp.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"
#include "vpr/pup.hpp"
#include "vpr/runtime.hpp"

namespace picprk::par {

DriverResult run_ampi(const RunConfig& config) {
  PICPRK_EXPECTS(config.workers >= 1);
  PICPRK_EXPECTS(config.overdecomposition >= 1);
  const int workers = config.workers;
  const int vps = workers * config.overdecomposition;

  auto shared = std::make_shared<const PicVpShared>(config, vps);
  PICPRK_EXPECTS(shared->vcart.px() <= config.init.grid.cells);
  PICPRK_EXPECTS(shared->vcart.py() <= config.init.grid.cells);

  vpr::RuntimeConfig rt_config;
  rt_config.workers = workers;
  rt_config.vps = vps;
  rt_config.lb_interval = config.lb.every;
  rt_config.balancer = config.lb.strategy.empty() ? "greedy" : config.lb.strategy;
  rt_config.use_measured_load = config.lb.measured;
  rt_config.obs = config.obs;  // runtime registers its own instruments

  vpr::Runtime runtime(rt_config, [shared](int vp) {
    return std::make_unique<PicVp>(vp, shared);
  });
  runtime.for_each_vp([](vpr::VirtualProcessor& vp) {
    static_cast<PicVp&>(vp).populate();
  });

  DriverResult result;
  double checkpoint_seconds = 0.0;
  // The driver thread gets its own trace lane (pid 0) for checkpoint
  // rounds; the runtime's VP lanes live under pid 1.
  const obs::StepInstruments inst(config.obs, "ampi", 0, "driver", 0,
                                  static_cast<std::size_t>(config.steps) * 2 + 8);
  const bool checkpointing = config.ft.checkpointing();
  // Localized recovery (docs/RESILIENCE.md): a killed VP marks its
  // *worker* dead — the vpr analogue of a rank failure. Every VP is
  // restored in-process from the store and the dead worker is retired;
  // its VPs are re-placed through the balancer's degraded path and the
  // run continues on the shrunken worker set. Requires per-step
  // checkpoints so survivors replay at most one superstep.
  const bool local_mode =
      config.resilience.recovery == RecoveryMode::kLocal && checkpointing;
  const std::uint32_t cadence =
      local_mode ? 1 : (checkpointing ? config.ft.checkpoint_every : 0);
  std::uint64_t checkpoint_rounds = 0, checkpoint_bytes = 0;
  std::uint32_t recoveries = 0, localized = 0, replayed = 0;
  /// Rollback attempts before an injected VP death is rethrown.
  constexpr std::uint32_t kMaxVpRecoveries = 3;

  util::Timer wall;
  for (std::uint32_t step = 0; step < config.steps;) {
    if (checkpointing && step % cadence == 0) {
      obs::Phase phase(obs::kPhaseCheckpoint, &checkpoint_seconds, inst.lane,
                       inst.checkpoint);
      // Double in-memory checkpoint per VP: primary + buddy copy, both
      // keyed by the VP id (the "rank" of this driver).
      for (int v = 0; v < vps; ++v) {
        std::vector<std::byte> packed = vpr::pup_pack(runtime.vp(v));
        checkpoint_bytes += 2 * packed.size();
        config.ft.store->save_buddy(v, step, packed);
        config.ft.store->save(v, step, std::move(packed));
      }
      ++checkpoint_rounds;
    }
    try {
      runtime.run(1);
    } catch (const ft::RankKilled& e) {
      if (!checkpointing) throw;
      if (local_mode) {
        // The killed VP's host worker dies with everything it ran: drop
        // the primary of every co-located VP (only buddy copies survive).
        const int dead_worker = runtime.worker_of(e.rank());
        for (int v = 0; v < vps; ++v) {
          if (runtime.worker_of(v) == dead_worker) config.ft.store->drop_primary(v);
        }
        const auto consistent = config.ft.store->consistent_step(vps);
        if (!consistent || localized >= kMaxVpRecoveries) throw;
        runtime.rewind(*consistent);
        for (int v = 0; v < vps; ++v) {
          auto bytes = config.ft.store->load(v, *consistent);
          PICPRK_ASSERT_MSG(bytes.has_value(),
                            "consistent checkpoint is missing a vp snapshot");
          vpr::pup_unpack(runtime.vp(v), std::move(*bytes));
        }
        // Shrink the live set; the dead worker's VPs evacuate through
        // the balancer's degraded plan before the next superstep.
        runtime.retire_worker(dead_worker);
        replayed += step - *consistent;
        step = *consistent;
        ++localized;
        continue;
      }
      config.ft.store->drop_primary(e.rank());
      const auto consistent = config.ft.store->consistent_step(vps);
      if (!consistent || recoveries >= kMaxVpRecoveries) throw;
      // In-process rollback: rewind the superstep clock, discard pending
      // messages, and rebuild every VP from its surviving snapshot copy.
      runtime.rewind(*consistent);
      for (int v = 0; v < vps; ++v) {
        auto bytes = config.ft.store->load(v, *consistent);
        PICPRK_ASSERT_MSG(bytes.has_value(),
                          "consistent checkpoint is missing a vp snapshot");
        vpr::pup_unpack(runtime.vp(v), std::move(*bytes));
      }
      step = *consistent;
      ++recoveries;
      continue;
    }
    if (config.sample_every > 0 && step % config.sample_every == 0) {
      std::vector<double> worker_load(static_cast<std::size_t>(workers), 0.0);
      double total = 0.0;
      for (int v = 0; v < vps; ++v) {
        const double load = static_cast<PicVp&>(runtime.vp(v)).particles().size();
        worker_load[static_cast<std::size_t>(runtime.worker_of(v))] += load;
        total += load;
      }
      // λ over live workers: a retired worker's permanent zero must not
      // deflate the mean (its max contribution is already zero).
      const double mean = total / static_cast<double>(runtime.live_workers());
      double max = 0.0;
      for (double w : worker_load) max = std::max(max, w);
      const double lambda = mean > 0 ? max / mean : 1.0;
      result.imbalance_series.push_back(lambda);
      if (config.obs.active()) {
        // Single-process driver: particle counts double as the compute
        // load, so both lambdas coincide here.
        obs::StepSample sample;
        sample.step = static_cast<int>(step);
        sample.lambda = lambda;
        sample.max_load = max;
        sample.mean_load = mean;
        sample.lambda_compute = lambda;
        result.step_samples.push_back(sample);
      }
    }
    ++step;
  }
  const double seconds = wall.elapsed();

  // Verification + bookkeeping across all VPs.
  VpVerifyTally tally;
  std::vector<std::uint64_t> per_worker(static_cast<std::size_t>(workers), 0);
  runtime.for_each_vp([&](vpr::VirtualProcessor& vp_base) {
    auto& vp = static_cast<PicVp&>(vp_base);
    accumulate_vp_verification(vp, config, tally);
    per_worker[static_cast<std::size_t>(runtime.worker_of(vp.id()))] +=
        vp.particles().size();
  });
  const pic::VerifyResult& verify = tally.verify;
  const std::uint64_t sent = tally.sent_particles;

  const std::uint64_t expected =
      vpr_expected_checksum(shared->init, config.events, tally.removed_id_sum);

  const vpr::RuntimeStats& stats = runtime.stats();
  result.verification = verify;
  result.expected_id_checksum = expected;
  result.ok = verify.ok(expected);
  result.final_particles = verify.checked;
  result.max_particles_per_rank = 0;
  for (auto w : per_worker)
    result.max_particles_per_rank = std::max(result.max_particles_per_rank, w);
  result.ideal_particles_per_rank =
      static_cast<double>(verify.checked) /
      static_cast<double>(runtime.live_workers());
  result.seconds = seconds;
  result.phases = PhaseBreakdown{stats.step_seconds - stats.lb_seconds, 0.0,
                                 stats.lb_seconds, checkpoint_seconds};
  result.particles_exchanged = sent;
  result.exchange_bytes = stats.message_bytes;
  result.lb_actions = stats.migrations;
  result.lb_bytes = stats.migrated_bytes;
  result.checkpoints = checkpoint_rounds;
  result.checkpoint_bytes = checkpoint_bytes;
  result.recoveries = recoveries + localized;
  result.localized_recoveries = localized;
  result.replayed_steps = replayed;
  return result;
}

}  // namespace picprk::par
