#include "par/ampi.hpp"

#include <cstring>
#include <memory>

#include "comm/cart.hpp"
#include "comm/comm.hpp"
#include "ft/checkpoint.hpp"
#include "ft/fault.hpp"
#include "pic/charge.hpp"
#include "pic/mover.hpp"
#include "pic/tiling.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"
#include "vpr/pup.hpp"
#include "vpr/runtime.hpp"

namespace picprk::par {

namespace {

/// Problem state shared (read-only) by all VPs.
struct SharedState {
  pic::InitParams init_params;
  pic::Initializer init;
  pic::EventSchedule events;
  comm::Cart2D vcart;  ///< VP grid (Vx × Vy)
  ft::FtOptions ft;    ///< fault/checkpoint hooks; rank space = VP ids

  SharedState(const DriverConfig& config, int vps)
      : init_params(config.init),
        init(config.init),
        events(config.events),
        vcart(vps),
        ft(config.ft) {}

  pic::CellRegion vp_block(int vp) const {
    const auto [vx, vy] = vcart.coords_of(vp);
    const auto xr = comm::block_range(init_params.grid.cells, vcart.px(), vx);
    const auto yr = comm::block_range(init_params.grid.cells, vcart.py(), vy);
    return pic::CellRegion{xr.lo, xr.hi, yr.lo, yr.hi};
  }

  int owner_vp(double x, double y) const {
    const auto cx = init_params.grid.cell_of(x);
    const auto cy = init_params.grid.cell_of(y);
    const int vx = comm::block_owner(init_params.grid.cells, vcart.px(), cx);
    const int vy = comm::block_owner(init_params.grid.cells, vcart.py(), cy);
    return vcart.rank_of(vx, vy);
  }
};

/// One subdomain of the over-decomposed PIC problem.
class PicVp final : public vpr::VirtualProcessor {
 public:
  PicVp(int id, std::shared_ptr<const SharedState> shared)
      : VirtualProcessor(id), shared_(std::move(shared)) {
    block_ = shared_->vp_block(id);
    tiles_.reset_region(block_);
    const pic::AlternatingColumnCharges pattern(shared_->init_params.mesh_q);
    slab_ = pic::ChargeSlab::sample(pattern, block_.x0, block_.y0, block_.width() + 1,
                                    block_.height() + 1);
  }

  /// Loads the initial particle population (called once, not on
  /// migration — migrated state arrives via pup()).
  void populate() {
    particles_ = pic::to_soa(
        shared_->init.create_block(block_.x0, block_.x1, block_.y0, block_.y1));
    tiles_.mark_dirty();
  }

  void step(vpr::VpContext& ctx) override {
    const pic::GridSpec& grid = shared_->init_params.grid;
    const std::uint32_t step = ctx.step();

    // Scripted step faults address VPs here (there are no world ranks).
    // No abort flag exists under vpr, so finite stalls sleep in full;
    // infinite stalls (ms=inf) are a threadcomm-only scenario.
    if (shared_->ft.injector != nullptr) {
      shared_->ft.injector->begin_step(id(), step);
    }

    // Events are rare: stage through the AoS wire form only on steps
    // where something is scheduled (free otherwise).
    if (!shared_->events.empty() && shared_->events.scheduled_at(step)) {
      std::vector<pic::Particle> staging = pic::to_aos(particles_);
      for (std::size_t e = 0; e < shared_->events.removals().size(); ++e) {
        if (shared_->events.removals()[e].step != step) continue;
        const pic::CellRegion& region = shared_->events.removals()[e].region;
        for (const pic::Particle& p : staging) {
          const auto cx = grid.cell_of(p.x);
          const auto cy = grid.cell_of(p.y);
          if (region.contains_cell(cx, cy) && shared_->events.removes(shared_->init, e, p.id)) {
            removed_id_sum_ += p.id;
          }
        }
      }
      shared_->events.apply_step(shared_->init, step, block_.x0, block_.x1, block_.y0,
                                 block_.y1, staging);
      particles_.assign(staging);
      tiles_.mark_dirty();
    }

    pic::move_all_tiled(particles_, tiles_, grid, slab_, shared_->init_params.dt);

    // Route emigrants to their owner VPs (static VP decomposition). All
    // routing scratch is VP-owned and reused every step; outgoing byte
    // payloads come from the pool that recycles delivered messages, so
    // steady-state routing allocates nothing. Keepers compact stably in
    // place (tile ranges shrink without a re-sort); emigrants leave as
    // AoS wire records.
    route_dst_.clear();
    const std::size_t n = particles_.size();
    route_owner_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      route_owner_[i] = shared_->owner_vp(particles_.x[i], particles_.y[i]);
    }
    std::size_t w = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const int owner = route_owner_[i];
      if (owner == id()) {
        if (w != i) particles_.move_row(w, i);
        ++w;
        continue;
      }
      std::size_t b = 0;
      while (b < route_dst_.size() && route_dst_[b] != owner) ++b;
      if (b == route_dst_.size()) {
        route_dst_.push_back(owner);
        if (route_buckets_.size() < route_dst_.size()) route_buckets_.emplace_back();
        route_buckets_[b].clear();
      }
      route_buckets_[b].push_back(particles_.get(i));
    }
    particles_.truncate(w);
    tiles_.compact_ranges(std::span<const int>(route_owner_.data(), n), id());
    for (std::size_t b = 0; b < route_dst_.size(); ++b) {
      const std::vector<pic::Particle>& bucket = route_buckets_[b];
      sent_particles_ += bucket.size();
      std::vector<std::byte> bytes = byte_pool_.acquire(bucket.size() * sizeof(pic::Particle));
      std::memcpy(bytes.data(), bucket.data(), bytes.size());
      ctx.send(route_dst_[b], std::move(bytes));
    }
  }

  void deliver(int /*src_vp*/, std::vector<std::byte> payload) override {
    PICPRK_ASSERT(payload.size() % sizeof(pic::Particle) == 0);
    const std::size_t count = payload.size() / sizeof(pic::Particle);
    if (count > 0) {
      // Wire records land in the untiled tail; the tile index stays
      // valid and the next move's flat pass covers them.
      recv_scratch_.resize(count);
      std::memcpy(recv_scratch_.data(), payload.data(), payload.size());
      particles_.append(std::span<const pic::Particle>(recv_scratch_));
    }
    byte_pool_.release(std::move(payload));  // becomes next step's send staging
  }

  double load() const override { return static_cast<double>(particles_.size()); }

  std::vector<int> neighbor_vps() const override {
    // 4-neighborhood on the periodic VP grid.
    const auto& cart = shared_->vcart;
    return {cart.neighbor(id(), 1, 0), cart.neighbor(id(), -1, 0),
            cart.neighbor(id(), 0, 1), cart.neighbor(id(), 0, -1)};
  }

  void pup(vpr::Pup& p) override {
    // Complete VP state: subdomain coordinates, the subgrid charges (the
    // data a distributed runtime would ship), and the particles.
    p(block_.x0);
    p(block_.x1);
    p(block_.y0);
    p(block_.y1);
    std::int64_t sx0 = slab_.x0(), sy0 = slab_.y0(), sw = slab_.width(), sh = slab_.height();
    p(sx0);
    p(sy0);
    p(sw);
    p(sh);
    if (p.unpacking()) {
      std::vector<double> values;
      p(values);
      slab_ = pic::ChargeSlab::from_values(sx0, sy0, sw, sh, std::move(values));
    } else {
      // Pack the live slab values in row-major order (matching
      // from_values above).
      std::vector<double> values;
      values.reserve(static_cast<std::size_t>(sw * sh));
      for (std::int64_t j = 0; j < sh; ++j)
        for (std::int64_t i = 0; i < sw; ++i) values.push_back(slab_.at(sx0 + i, sy0 + j));
      p(values);
    }
    particles_.pup(p);  // stages through the AoS wire form
    p(removed_id_sum_);
    p(sent_particles_);
    if (p.unpacking()) tiles_.mark_dirty();
  }

  const pic::ParticleSoA& particles() const { return particles_; }
  std::uint64_t removed_id_sum() const { return removed_id_sum_; }
  std::uint64_t sent_particles() const { return sent_particles_; }

 private:
  // Members below are either serialized in pup() or tagged pup:transient;
  // picprk-lint's pup rule rejects an untagged member missing from pup().
  std::shared_ptr<const SharedState> shared_;  // pup:transient — re-injected by the factory
  pic::CellRegion block_;
  pic::ChargeSlab slab_;
  pic::ParticleSoA particles_;
  pic::TileIndex tiles_;  // pup:transient — rebuilt from the store after unpack
  std::uint64_t removed_id_sum_ = 0;
  std::uint64_t sent_particles_ = 0;
  // Routing scratch: a migrated VP simply re-warms its buffers.
  std::vector<int> route_owner_;                       // pup:transient
  std::vector<std::vector<pic::Particle>> route_buckets_;  // pup:transient
  std::vector<int> route_dst_;                         // pup:transient
  std::vector<pic::Particle> recv_scratch_;            // pup:transient
  comm::BufferPool byte_pool_;                         // pup:transient
};

}  // namespace

DriverResult run_ampi(const RunConfig& config) {
  PICPRK_EXPECTS(config.workers >= 1);
  PICPRK_EXPECTS(config.overdecomposition >= 1);
  const int workers = config.workers;
  const int vps = workers * config.overdecomposition;

  auto shared = std::make_shared<const SharedState>(config, vps);
  PICPRK_EXPECTS(shared->vcart.px() <= config.init.grid.cells);
  PICPRK_EXPECTS(shared->vcart.py() <= config.init.grid.cells);

  vpr::RuntimeConfig rt_config;
  rt_config.workers = workers;
  rt_config.vps = vps;
  rt_config.lb_interval = config.lb.every;
  rt_config.balancer = config.lb.strategy.empty() ? "greedy" : config.lb.strategy;
  rt_config.use_measured_load = config.lb.measured;
  rt_config.obs = config.obs;  // runtime registers its own instruments

  vpr::Runtime runtime(rt_config, [shared](int vp) {
    return std::make_unique<PicVp>(vp, shared);
  });
  runtime.for_each_vp([](vpr::VirtualProcessor& vp) {
    static_cast<PicVp&>(vp).populate();
  });

  DriverResult result;
  double checkpoint_seconds = 0.0;
  // The driver thread gets its own trace lane (pid 0) for checkpoint
  // rounds; the runtime's VP lanes live under pid 1.
  const obs::StepInstruments inst(config.obs, "ampi", 0, "driver", 0,
                                  static_cast<std::size_t>(config.steps) * 2 + 8);
  const bool checkpointing = config.ft.checkpointing();
  // Localized recovery (docs/RESILIENCE.md): a killed VP marks its
  // *worker* dead — the vpr analogue of a rank failure. Every VP is
  // restored in-process from the store and the dead worker is retired;
  // its VPs are re-placed through the balancer's degraded path and the
  // run continues on the shrunken worker set. Requires per-step
  // checkpoints so survivors replay at most one superstep.
  const bool local_mode =
      config.resilience.recovery == RecoveryMode::kLocal && checkpointing;
  const std::uint32_t cadence =
      local_mode ? 1 : (checkpointing ? config.ft.checkpoint_every : 0);
  std::uint64_t checkpoint_rounds = 0, checkpoint_bytes = 0;
  std::uint32_t recoveries = 0, localized = 0, replayed = 0;
  /// Rollback attempts before an injected VP death is rethrown.
  constexpr std::uint32_t kMaxVpRecoveries = 3;

  util::Timer wall;
  for (std::uint32_t step = 0; step < config.steps;) {
    if (checkpointing && step % cadence == 0) {
      obs::Phase phase(obs::kPhaseCheckpoint, &checkpoint_seconds, inst.lane,
                       inst.checkpoint);
      // Double in-memory checkpoint per VP: primary + buddy copy, both
      // keyed by the VP id (the "rank" of this driver).
      for (int v = 0; v < vps; ++v) {
        std::vector<std::byte> packed = vpr::pup_pack(runtime.vp(v));
        checkpoint_bytes += 2 * packed.size();
        config.ft.store->save_buddy(v, step, packed);
        config.ft.store->save(v, step, std::move(packed));
      }
      ++checkpoint_rounds;
    }
    try {
      runtime.run(1);
    } catch (const ft::RankKilled& e) {
      if (!checkpointing) throw;
      if (local_mode) {
        // The killed VP's host worker dies with everything it ran: drop
        // the primary of every co-located VP (only buddy copies survive).
        const int dead_worker = runtime.worker_of(e.rank());
        for (int v = 0; v < vps; ++v) {
          if (runtime.worker_of(v) == dead_worker) config.ft.store->drop_primary(v);
        }
        const auto consistent = config.ft.store->consistent_step(vps);
        if (!consistent || localized >= kMaxVpRecoveries) throw;
        runtime.rewind(*consistent);
        for (int v = 0; v < vps; ++v) {
          auto bytes = config.ft.store->load(v, *consistent);
          PICPRK_ASSERT_MSG(bytes.has_value(),
                            "consistent checkpoint is missing a vp snapshot");
          vpr::pup_unpack(runtime.vp(v), std::move(*bytes));
        }
        // Shrink the live set; the dead worker's VPs evacuate through
        // the balancer's degraded plan before the next superstep.
        runtime.retire_worker(dead_worker);
        replayed += step - *consistent;
        step = *consistent;
        ++localized;
        continue;
      }
      config.ft.store->drop_primary(e.rank());
      const auto consistent = config.ft.store->consistent_step(vps);
      if (!consistent || recoveries >= kMaxVpRecoveries) throw;
      // In-process rollback: rewind the superstep clock, discard pending
      // messages, and rebuild every VP from its surviving snapshot copy.
      runtime.rewind(*consistent);
      for (int v = 0; v < vps; ++v) {
        auto bytes = config.ft.store->load(v, *consistent);
        PICPRK_ASSERT_MSG(bytes.has_value(),
                          "consistent checkpoint is missing a vp snapshot");
        vpr::pup_unpack(runtime.vp(v), std::move(*bytes));
      }
      step = *consistent;
      ++recoveries;
      continue;
    }
    if (config.sample_every > 0 && step % config.sample_every == 0) {
      std::vector<double> worker_load(static_cast<std::size_t>(workers), 0.0);
      double total = 0.0;
      for (int v = 0; v < vps; ++v) {
        const double load = static_cast<PicVp&>(runtime.vp(v)).particles().size();
        worker_load[static_cast<std::size_t>(runtime.worker_of(v))] += load;
        total += load;
      }
      // λ over live workers: a retired worker's permanent zero must not
      // deflate the mean (its max contribution is already zero).
      const double mean = total / static_cast<double>(runtime.live_workers());
      double max = 0.0;
      for (double w : worker_load) max = std::max(max, w);
      const double lambda = mean > 0 ? max / mean : 1.0;
      result.imbalance_series.push_back(lambda);
      if (config.obs.active()) {
        // Single-process driver: particle counts double as the compute
        // load, so both lambdas coincide here.
        obs::StepSample sample;
        sample.step = static_cast<int>(step);
        sample.lambda = lambda;
        sample.max_load = max;
        sample.mean_load = mean;
        sample.lambda_compute = lambda;
        result.step_samples.push_back(sample);
      }
    }
    ++step;
  }
  const double seconds = wall.elapsed();

  // Verification + bookkeeping across all VPs.
  pic::VerifyResult verify;
  std::uint64_t removed_sum = 0, sent = 0;
  std::vector<std::uint64_t> per_worker(static_cast<std::size_t>(workers), 0);
  runtime.for_each_vp([&](vpr::VirtualProcessor& vp_base) {
    auto& vp = static_cast<PicVp&>(vp_base);
    const std::vector<pic::Particle> aos = pic::to_aos(vp.particles());
    verify = pic::merge(verify,
                        pic::verify_particles(std::span<const pic::Particle>(aos),
                                              config.init.grid, config.steps,
                                              config.verify_epsilon));
    removed_sum += vp.removed_id_sum();
    sent += vp.sent_particles();
    per_worker[static_cast<std::size_t>(runtime.worker_of(vp.id()))] +=
        vp.particles().size();
  });

  std::uint64_t expected = pic::expected_checksum(shared->init.total());
  for (std::size_t e = 0; e < config.events.injections().size(); ++e) {
    const std::uint64_t first = config.events.injection_first_id(shared->init, e);
    const std::uint64_t count = config.events.injection_total(shared->init, e);
    if (count > 0) expected += count * first + count * (count - 1) / 2;
  }
  expected -= removed_sum;

  const vpr::RuntimeStats& stats = runtime.stats();
  result.verification = verify;
  result.expected_id_checksum = expected;
  result.ok = verify.ok(expected);
  result.final_particles = verify.checked;
  result.max_particles_per_rank = 0;
  for (auto w : per_worker)
    result.max_particles_per_rank = std::max(result.max_particles_per_rank, w);
  result.ideal_particles_per_rank =
      static_cast<double>(verify.checked) /
      static_cast<double>(runtime.live_workers());
  result.seconds = seconds;
  result.phases = PhaseBreakdown{stats.step_seconds - stats.lb_seconds, 0.0,
                                 stats.lb_seconds, checkpoint_seconds};
  result.particles_exchanged = sent;
  result.exchange_bytes = stats.message_bytes;
  result.lb_actions = stats.migrations;
  result.lb_bytes = stats.migrated_bytes;
  result.checkpoints = checkpoint_rounds;
  result.checkpoint_bytes = checkpoint_bytes;
  result.recoveries = recoveries + localized;
  result.localized_recoveries = localized;
  result.replayed_steps = replayed;
  return result;
}

}  // namespace picprk::par
