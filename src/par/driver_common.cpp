#include "par/driver_common.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace picprk::par {

EventTracker::EventTracker(const pic::Initializer& init, const pic::EventSchedule& events)
    : init_(init), events_(events) {
  base_ = pic::expected_checksum(init.total());
  for (std::size_t e = 0; e < events_.injections().size(); ++e) {
    const std::uint64_t first = events_.injection_first_id(init_, e);
    const std::uint64_t count = events_.injection_total(init_, e);
    if (count > 0) base_ += count * first + count * (count - 1) / 2;
  }
}

void EventTracker::apply(std::uint32_t step, const pic::CellRegion& block,
                         std::vector<pic::Particle>& particles) {
  const pic::GridSpec& grid = init_.params().grid;
  // Record the ids the removal events will take out of this rank's set.
  for (std::size_t e = 0; e < events_.removals().size(); ++e) {
    if (events_.removals()[e].step != step) continue;
    const pic::CellRegion& region = events_.removals()[e].region;
    for (const pic::Particle& p : particles) {
      const auto cx = grid.cell_of(p.x);
      const auto cy = grid.cell_of(p.y);
      if (region.contains_cell(cx, cy) && events_.removes(init_, e, p.id)) {
        local_removed_sum_ += p.id;
      }
    }
  }
  events_.apply_step(init_, step, block.x0, block.x1, block.y0, block.y1, particles);
}

void EventTracker::apply(std::uint32_t step, const pic::CellRegion& block,
                         pic::ParticleSoA& particles, pic::TileIndex* tiles) {
  if (!events_.scheduled_at(step)) return;
  std::vector<pic::Particle> staging = pic::to_aos(particles);
  apply(step, block, staging);
  particles.assign(staging);
  if (tiles != nullptr) tiles->mark_dirty();
}

std::uint64_t EventTracker::finalize(comm::Comm& comm) const {
  const std::uint64_t removed = comm.allreduce_value<std::uint64_t>(
      local_removed_sum_, [](std::uint64_t a, std::uint64_t b) { return a + b; });
  return base_ - removed;
}

pic::VerifyResult merge_verification(comm::Comm& comm, const pic::VerifyResult& local) {
  // Pack into a fixed-size record so one allreduce suffices.
  struct Packed {
    std::uint64_t checked, failures, checksum, ok;
    double max_err;
  };
  const Packed mine{local.checked, local.position_failures, local.id_checksum,
                    local.positions_ok ? 1ull : 0ull, local.max_position_error};
  const Packed merged = comm.allreduce_value<Packed>(mine, [](Packed a, Packed b) {
    return Packed{a.checked + b.checked, a.failures + b.failures,
                  a.checksum + b.checksum, a.ok & b.ok, std::max(a.max_err, b.max_err)};
  });
  pic::VerifyResult out;
  out.checked = merged.checked;
  out.position_failures = merged.failures;
  out.id_checksum = merged.checksum;
  out.positions_ok = merged.ok != 0;
  out.max_position_error = merged.max_err;
  return out;
}

double sample_imbalance(comm::Comm& comm, std::uint64_t local_count) {
  struct Pair {
    std::uint64_t max, sum;
  };
  const Pair mine{local_count, local_count};
  const Pair merged = comm.allreduce_value<Pair>(mine, [](Pair a, Pair b) {
    return Pair{std::max(a.max, b.max), a.sum + b.sum};
  });
  if (merged.sum == 0) return 1.0;
  const double mean =
      static_cast<double>(merged.sum) / static_cast<double>(comm.size());
  return static_cast<double>(merged.max) / mean;
}

obs::StepSample sample_step_telemetry(comm::Comm& comm, int step,
                                      std::uint64_t local_count,
                                      double local_compute_seconds) {
  struct Loads {
    std::uint64_t count_max, count_sum;
    double seconds_max, seconds_sum;
  };
  const Loads mine{local_count, local_count, local_compute_seconds,
                   local_compute_seconds};
  const Loads merged = comm.allreduce_value<Loads>(mine, [](Loads a, Loads b) {
    return Loads{std::max(a.count_max, b.count_max), a.count_sum + b.count_sum,
                 std::max(a.seconds_max, b.seconds_max),
                 a.seconds_sum + b.seconds_sum};
  });
  obs::StepSample s;
  s.step = step;
  const auto ranks = static_cast<double>(comm.size());
  s.max_load = static_cast<double>(merged.count_max);
  s.mean_load = static_cast<double>(merged.count_sum) / ranks;
  s.lambda = s.mean_load > 0.0 ? s.max_load / s.mean_load : 1.0;
  const double mean_seconds = merged.seconds_sum / ranks;
  s.lambda_compute = mean_seconds > 0.0 ? merged.seconds_max / mean_seconds : 1.0;
  return s;
}

void finalize_result(comm::Comm& comm, const DriverConfig& config,
                     const pic::VerifyResult& local_verify, const EventTracker& tracker,
                     std::uint64_t local_particles, double local_seconds,
                     const PhaseBreakdown& local_phases, std::uint64_t local_sent,
                     std::uint64_t local_bytes, std::uint64_t local_lb_actions,
                     std::uint64_t local_lb_bytes, DriverResult& result) {
  result.verification = merge_verification(comm, local_verify);
  result.expected_id_checksum = tracker.finalize(comm);
  result.ok = result.verification.ok(result.expected_id_checksum);

  struct Scalars {
    std::uint64_t total_particles, max_particles, sent, bytes, lb_actions, lb_bytes;
    double seconds, compute, exchange, lb, checkpoint;
  };
  const Scalars mine{local_particles, local_particles, local_sent,
                     local_bytes,     local_lb_actions, local_lb_bytes,
                     local_seconds,   local_phases.compute,
                     local_phases.exchange, local_phases.lb,
                     local_phases.checkpoint};
  const Scalars merged = comm.allreduce_value<Scalars>(mine, [](Scalars a, Scalars b) {
    return Scalars{a.total_particles + b.total_particles,
                   std::max(a.max_particles, b.max_particles),
                   a.sent + b.sent,
                   a.bytes + b.bytes,
                   a.lb_actions + b.lb_actions,
                   a.lb_bytes + b.lb_bytes,
                   std::max(a.seconds, b.seconds),
                   std::max(a.compute, b.compute),
                   std::max(a.exchange, b.exchange),
                   std::max(a.lb, b.lb),
                   std::max(a.checkpoint, b.checkpoint)};
  });
  result.final_particles = merged.total_particles;
  result.max_particles_per_rank = merged.max_particles;
  result.ideal_particles_per_rank =
      static_cast<double>(merged.total_particles) / static_cast<double>(comm.size());
  result.seconds = merged.seconds;
  result.phases =
      PhaseBreakdown{merged.compute, merged.exchange, merged.lb, merged.checkpoint};
  result.particles_exchanged = merged.sent;
  result.exchange_bytes = merged.bytes;
  result.lb_actions = merged.lb_actions;
  result.lb_bytes = merged.lb_bytes;
  (void)config;
}

}  // namespace picprk::par
