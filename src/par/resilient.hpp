// Driver-level checkpoint/recovery for the threadcomm drivers
// (docs/RESILIENCE.md). A DriverSnapshot is the complete per-rank state
// of the stepping loop at the start of a step; checkpoint_exchange()
// buddy-replicates it (primary copy in the rank's own store slot, one
// copy shipped to rank+1 mod P), and run_resilient() re-runs a driver
// through a fresh World after an injected failure, rolling every rank
// back to the store's last consistent checkpoint.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "comm/message.hpp"
#include "ft/checkpoint.hpp"
#include "ft/fault.hpp"
#include "par/run_config.hpp"
#include "pic/particle.hpp"
#include "vpr/pup.hpp"

namespace picprk::par {

/// Buddy-checkpoint payloads travel under comm::kCheckpointTag from the
/// tag registry in comm/message.hpp.
using comm::kCheckpointTag;

/// Everything a rank needs to re-enter the stepping loop at `step`.
/// Bounds vectors are empty for drivers with a static decomposition.
struct DriverSnapshot {
  std::uint32_t step = 0;
  std::vector<std::int64_t> x_bounds;
  std::vector<std::int64_t> y_bounds;
  std::vector<pic::Particle> particles;
  std::uint64_t removed_sum = 0;  ///< EventTracker local removed-id sum
  std::uint64_t sent = 0;         ///< particles exchanged so far
  std::uint64_t bytes = 0;        ///< exchange bytes so far
  std::uint64_t lb_actions = 0;   ///< mesh transfers so far (diffusion)
  std::uint64_t lb_bytes = 0;     ///< mesh bytes so far (diffusion)
  /// Sampling-series length (imbalance_series entries) at snapshot time,
  /// so a localized restore can truncate the partially-replayed series.
  std::uint64_t samples = 0;

  void pup(vpr::Pup& p);
};

/// Buddy checkpoint round: packs `snap`, keeps the primary in this
/// rank's slot and ships one copy to (rank+1) mod P (stored under this
/// rank's slot as the buddy copy). Collective over `comm`; all ranks
/// must pass the same snap.step. Returns the bytes this rank packed and
/// shipped (for DriverResult::checkpoint_bytes).
std::uint64_t checkpoint_exchange(comm::Comm& comm, ft::CheckpointStore& store,
                                  DriverSnapshot& snap);

/// Restores `rank`'s snapshot at the store's consistent step over
/// `slots` ranks (primary preferred, buddy fallback). nullopt when the
/// store has no consistent line or no copy survived for this rank.
std::optional<DriverSnapshot> restore_snapshot(int rank, int slots,
                                               const ft::CheckpointStore& store);

// ResilienceOptions lives in par/run_config.hpp (a RunConfig fully
// describes a resilient run).

/// What the recovery loop observed — for tools and tests.
struct ResilienceTelemetry {
  std::uint32_t recoveries = 0;  ///< all repairs (rollbacks + localized)
  std::uint32_t rollbacks = 0;   ///< full world-teardown recoveries only
  std::uint32_t localized_recoveries = 0;  ///< in-place buddy restores
  std::uint32_t replayed_steps = 0;  ///< max steps any survivor re-ran
  std::vector<ft::FaultEvent> trace;  ///< deterministic fired-fault trace
  std::uint64_t dropped = 0, duplicated = 0, delayed = 0, kills = 0, stalls = 0;
  std::uint64_t checkpoint_saves = 0;
  std::uint64_t residual_messages = 0;  ///< drained over all aborted runs
  std::uint64_t residual_duplicates = 0;  ///< drained dup/retransmit copies
  std::uint64_t drained_messages = 0;  ///< drained by localized rendezvous
  // Reliable-transport tallies (zero when options.reliable is false).
  std::uint64_t retransmits = 0;
  std::uint64_t dup_dropped = 0;  ///< dedup-window hits at the receiver
  std::uint64_t reordered = 0;
  std::uint64_t abandoned = 0;  ///< messages past the retransmit budget
  std::vector<std::string> failures;    ///< what() of every caught failure
};

using DriverFn = std::function<DriverResult(comm::Comm&, const RunConfig&)>;

/// Runs `driver` on config.ranks threadcomm ranks under fault injection
/// with buddy checkpointing, per config.resilience. On an injected
/// failure (RankKilled, CommTimeout, DeadlockDetected) the aborted world
/// is drained, the dead rank's primary snapshots are discarded, and the
/// driver is re-run with RunConfig::ft.resume set so every rank restarts
/// from the last consistent checkpoint. Rethrows when recovery is
/// impossible (no consistent checkpoint, max_recoveries exceeded, or a
/// non-injected error).
DriverResult run_resilient(const RunConfig& config, const DriverFn& driver,
                           ResilienceTelemetry* telemetry = nullptr);

}  // namespace picprk::par
