// The baseline parallel implementation, "mpi-2d" in the paper (§IV-A):
// static 2-D block decomposition, each rank moves the particles residing
// in its subdomain and routes emigrants to their owners after every
// step. No load balancing — the reference the other two implementations
// are measured against.
#pragma once

#include "par/driver_common.hpp"

namespace picprk::par {

/// Runs the baseline driver; collective over `comm`. The returned result
/// is identical on every rank.
DriverResult run_baseline(comm::Comm& comm, const DriverConfig& config);

}  // namespace picprk::par
