// One front door for every driver: `make_engine(config)` resolves
// `config.impl` to an Engine whose run() owns the whole lifecycle —
// resilience validation, fault-hook wiring, the resilient re-run loop,
// telemetry absorption into the run registry — and returns a typed
// RunReport. The CLI and the job server stop switch-casing on driver
// names, and the RESULT-line grammar is rendered in exactly one place
// (RunReport::result_line over util::ResultLine) instead of being
// re-emitted ad hoc per entry point.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "par/resilient.hpp"
#include "par/run_config.hpp"

namespace picprk::par {

/// Everything a finished run reports, in one typed record. The text
/// renderings (human_summary / result_line) live here so every entry
/// point — tools/picprk, svc::Server, benches — prints the same grammar.
struct RunReport {
  std::string impl;     ///< engine name that produced this report
  DriverResult result;  ///< merged driver result (identical on all ranks)
  /// Recovery-loop observations. Only meaningful when `ft_telemetry`
  /// is set (the run went through run_resilient); ampi and async handle
  /// faults in-process and report through `result` instead.
  ResilienceTelemetry ft;
  bool ft_telemetry = false;

  /// 0 on verified success, 1 on verification failure (the tool's
  /// contract; typed comm/ft failures surface as exceptions instead).
  int exit_code() const { return result.ok ? 0 : 1; }

  /// "<impl>: VERIFIED — N particles, S s (extra)" — the per-impl
  /// banner line the CLI has always printed.
  std::string human_summary() const;

  /// "RESULT impl=... status=... key=value ..." (no newline). Keys and
  /// formats are stable: serial emits the base quartet, the parallel
  /// drivers append the checksum/exchange/resilience tail, and resilient
  /// runs append the recovery-loop counters.
  std::string result_line() const;
};

/// A configured, runnable kernel. Engines are single-shot: construct
/// via make_engine, call run() once, read the report.
class Engine {
 public:
  virtual ~Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs the kernel to completion. Collective failures (CommTimeout,
  /// RankKilled, DeadlockDetected) propagate to the caller.
  virtual RunReport run() = 0;

  /// Registry name ("serial", "baseline", ...).
  const std::string& name() const { return name_; }

 protected:
  Engine(std::string name, RunConfig config);

  /// Folds the finished result (and per-impl fault counters) into
  /// config_.obs.registry when one is attached; no-op when running dark.
  void absorb(const DriverResult& result) const;

  std::string name_;
  RunConfig config_;
};

/// Engine names in pipeline order — the value set of RunConfig::impl.
const std::vector<std::string>& engine_names();

/// Resolves config.impl against the engine table. Validates the
/// resilience knobs up front; throws std::invalid_argument for an
/// unknown impl or a nonsensical knob combination.
std::unique_ptr<Engine> make_engine(RunConfig config);

}  // namespace picprk::par
