#include "par/diffusion.hpp"

#include <algorithm>
#include <string>

#include "comm/cart.hpp"
#include "par/decomposition.hpp"
#include "par/exchange.hpp"
#include "par/resilient.hpp"
#include "pic/charge.hpp"
#include "pic/mover.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace picprk::par {

namespace {

using comm::kMeshTag;

/// Rebuilds this rank's charge slab for a new block, exchanging the mesh
/// values that changed owner with the adjacent rank. The payloads really
/// travel (they are the paper's "migrating the underlying subgrids" cost)
/// and every received value is checked against the analytic pattern —
/// a protocol error shows up immediately instead of corrupting forces.
///
/// `axis` is 0 for an x-boundary move, 1 for y. `old_b`/`new_b` is the
/// moved boundary; `lower_side` says whether this rank is on the lower-
/// index side of the boundary.
struct MeshMigration {
  std::uint64_t bytes_sent = 0;
  std::uint64_t transfers = 0;
  std::vector<double> recv_scratch;  // reused across migrations (recv_into)
};

void migrate_mesh_boundary(comm::Comm& comm, const pic::ChargeSlab& slab,
                           const pic::AlternatingColumnCharges& pattern, int axis,
                           std::int64_t old_b, std::int64_t new_b, bool lower_side,
                           int partner, MeshMigration& stats) {
  if (old_b == new_b) return;
  // Ranges below are mesh-point columns/rows (half-open).
  std::int64_t send_lo = 0, send_hi = 0, recv_lo = 0, recv_hi = 0;
  if (new_b < old_b) {
    // Boundary moved toward lower indices: the lower side loses cells
    // [new_b, old_b) and ships the mesh points [new_b, old_b); the upper
    // side already owns point old_b.
    if (lower_side) {
      send_lo = new_b;
      send_hi = old_b;
    } else {
      recv_lo = new_b;
      recv_hi = old_b;
    }
  } else {
    // Boundary moved toward higher indices: the upper side loses cells
    // [old_b, new_b) and ships mesh points (old_b, new_b]; the lower side
    // already owns point old_b.
    if (lower_side) {
      recv_lo = old_b + 1;
      recv_hi = new_b + 1;
    } else {
      send_lo = old_b + 1;
      send_hi = new_b + 1;
    }
  }

  if (send_hi > send_lo) {
    const std::vector<double> payload = axis == 0
                                            ? slab.extract_columns(send_lo, send_hi)
                                            : slab.extract_rows(send_lo, send_hi);
    stats.bytes_sent += payload.size() * sizeof(double);
    ++stats.transfers;
    comm.send(payload, partner, kMeshTag);
  }
  if (recv_hi > recv_lo) {
    comm.recv_into(stats.recv_scratch, partner, kMeshTag);
    const std::vector<double>& payload = stats.recv_scratch;
    ++stats.transfers;
    // Integrity check: the received subgrid must match the specification
    // pattern (columns depend only on the point x-index).
    const std::int64_t span0 = axis == 0 ? slab.height() : slab.width();
    PICPRK_ASSERT_MSG(payload.size() ==
                          static_cast<std::size_t>((recv_hi - recv_lo) * span0),
                      "mesh migration payload has the wrong size");
    std::size_t idx = 0;
    for (std::int64_t line = recv_lo; line < recv_hi; ++line) {
      for (std::int64_t j = 0; j < span0; ++j, ++idx) {
        const double expect = axis == 0 ? pattern.at(line, slab.y0() + j)
                                        : pattern.at(slab.x0() + j, line);
        PICPRK_ASSERT_MSG(payload[idx] == expect,
                          "mesh migration delivered corrupted charges");
      }
    }
  }
}

}  // namespace

std::vector<std::int64_t> diffuse_bounds(const std::vector<std::int64_t>& bounds,
                                         const std::vector<std::uint64_t>& loads,
                                         double abs_threshold, std::int64_t width) {
  PICPRK_EXPECTS(bounds.size() == loads.size() + 1);
  PICPRK_EXPECTS(width >= 1);
  const auto parts = static_cast<std::int64_t>(loads.size());
  std::vector<std::int64_t> out = bounds;
  for (std::int64_t b = 1; b < parts; ++b) {
    const double lower = static_cast<double>(loads[static_cast<std::size_t>(b - 1)]);
    const double upper = static_cast<double>(loads[static_cast<std::size_t>(b)]);
    std::int64_t proposed = bounds[static_cast<std::size_t>(b)];
    if (lower - upper > abs_threshold) {
      proposed -= width;  // lower side is overloaded: give cells rightward
    } else if (upper - lower > abs_threshold) {
      proposed += width;  // upper side is overloaded: take cells from it
    }
    // Sequential clamp keeps boundaries strictly increasing even when
    // adjacent boundaries move in the same LB step. The lower clamp also
    // respects the OLD boundary b−1: the sender of a left-shift ships
    // mesh columns from its current slab, which starts at the old
    // boundary, so a boundary may never jump past it in one step.
    const std::int64_t lo =
        std::max(out[static_cast<std::size_t>(b - 1)], bounds[static_cast<std::size_t>(b - 1)]) + 1;
    const std::int64_t hi = bounds[static_cast<std::size_t>(b + 1)] - 1;
    out[static_cast<std::size_t>(b)] = std::clamp(proposed, lo, hi);
  }
  return out;
}

DriverResult run_diffusion(comm::Comm& comm, const DriverConfig& config,
                           const DiffusionParams& lb) {
  PICPRK_EXPECTS(lb.frequency >= 1);
  const comm::Cart2D cart(comm.size());
  Decomposition2D decomp(config.init.grid, cart);
  const pic::GridSpec& grid = config.init.grid;
  const auto [my_cx, my_cy] = cart.coords_of(comm.rank());

  const pic::Initializer init(config.init);
  pic::CellRegion block = decomp.block_of(comm.rank());
  std::vector<pic::Particle> particles =
      init.create_block(block.x0, block.x1, block.y0, block.y1);
  const pic::AlternatingColumnCharges pattern(config.init.mesh_q);
  pic::ChargeSlab slab = pic::ChargeSlab::sample(
      pattern, block.x0, block.y0, block.width() + 1, block.height() + 1);

  EventTracker tracker(init, config.events);

  DriverResult result;
  double compute_seconds = 0.0, exchange_seconds = 0.0, lb_seconds = 0.0,
         checkpoint_seconds = 0.0;
  ExchangeBuffers exchange_buffers;  // steady-state exchange allocates nothing
  MeshMigration mesh_stats;
  util::Timer wall;

  // All registration/allocation happens here, before the step loop.
  const obs::StepInstruments inst(config.obs, "diffusion", 0,
                                  "rank " + std::to_string(comm.rank()), comm.rank(),
                                  static_cast<std::size_t>(config.steps) * 4 + 8);
  exchange_buffers.sent_counter = inst.exchange_sent;
  exchange_buffers.received_counter = inst.exchange_received;
  exchange_buffers.bytes_counter = inst.exchange_bytes;

  auto rebuild_slab = [&]() {
    block = decomp.block_of(comm.rank());
    slab = pic::ChargeSlab::sample(pattern, block.x0, block.y0, block.width() + 1,
                                   block.height() + 1);
  };

  std::uint32_t start_step = 0;
  std::uint64_t checkpoint_rounds = 0, checkpoint_bytes = 0;
  if (config.ft.resume && config.ft.store != nullptr) {
    if (auto snap = restore_snapshot(comm.rank(), comm.size(), *config.ft.store)) {
      start_step = snap->step;
      // The decomposition moves under this driver: restore the boundary
      // vectors first, then rebuild the block and charge slab for them.
      decomp.set_x_bounds(snap->x_bounds);
      decomp.set_y_bounds(snap->y_bounds);
      rebuild_slab();
      particles = std::move(snap->particles);
      tracker.restore_removed_sum(snap->removed_sum);
      exchange_buffers.totals.sent = snap->sent;
      exchange_buffers.totals.bytes = snap->bytes;
      mesh_stats.transfers = snap->lb_actions;
      mesh_stats.bytes_sent = snap->lb_bytes;
    }
  }

  for (std::uint32_t step = start_step; step < config.steps; ++step) {
    if (config.ft.checkpointing() && step % config.ft.checkpoint_every == 0) {
      obs::Phase phase(obs::kPhaseCheckpoint, &checkpoint_seconds, inst.lane,
                       inst.checkpoint);
      DriverSnapshot snap;
      snap.step = step;
      snap.x_bounds = decomp.x_bounds();
      snap.y_bounds = decomp.y_bounds();
      snap.particles = particles;
      snap.removed_sum = tracker.removed_sum();
      snap.sent = exchange_buffers.totals.sent;
      snap.bytes = exchange_buffers.totals.bytes;
      snap.lb_actions = mesh_stats.transfers;
      snap.lb_bytes = mesh_stats.bytes_sent;
      checkpoint_bytes += checkpoint_exchange(comm, *config.ft.store, snap);
      ++checkpoint_rounds;
    }
    if (config.ft.injector != nullptr) {
      config.ft.injector->begin_step(comm.world_rank(), step, &comm.abort_flag());
    }

    if (!config.events.empty()) tracker.apply(step, block, particles);

    {
      obs::Phase phase(obs::kPhaseCompute, &compute_seconds, inst.lane, inst.compute);
      pic::move_all(std::span<pic::Particle>(particles), grid, slab, config.init.dt);
    }

    {
      obs::Phase phase(obs::kPhaseExchange, &exchange_seconds, inst.lane,
                       inst.exchange);
      exchange_particles(comm, decomp, particles, exchange_buffers);
    }

    if (step > 0 && step % lb.frequency == 0) {
      obs::Phase phase(obs::kPhaseLb, &lb_seconds, inst.lane, inst.lb);

      // Phase 1 (x): aggregate per-processor-column loads, diffuse the
      // shared column boundaries, migrate border subgrids + particles.
      {
        std::vector<std::uint64_t> col_loads(static_cast<std::size_t>(cart.px()), 0);
        col_loads[static_cast<std::size_t>(my_cx)] = particles.size();
        col_loads = comm.allreduce(
            std::span<const std::uint64_t>(col_loads),
            [](std::uint64_t a, std::uint64_t b) { return a + b; });
        std::uint64_t total = 0;
        for (auto v : col_loads) total += v;
        const double abs_threshold =
            lb.threshold * static_cast<double>(total) / static_cast<double>(cart.px());
        const auto old_xb = decomp.x_bounds();
        const auto new_xb =
            diffuse_bounds(old_xb, col_loads, abs_threshold, lb.border_width);
        if (new_xb != old_xb) {
          // Migrate mesh data across my (left, right) boundaries.
          migrate_mesh_boundary(comm, slab, pattern, 0,
                                old_xb[static_cast<std::size_t>(my_cx)],
                                new_xb[static_cast<std::size_t>(my_cx)],
                                /*lower_side=*/false, cart.neighbor(comm.rank(), -1, 0),
                                mesh_stats);
          migrate_mesh_boundary(comm, slab, pattern, 0,
                                old_xb[static_cast<std::size_t>(my_cx) + 1],
                                new_xb[static_cast<std::size_t>(my_cx) + 1],
                                /*lower_side=*/true, cart.neighbor(comm.rank(), 1, 0),
                                mesh_stats);
          decomp.set_x_bounds(new_xb);
          rebuild_slab();
          exchange_particles(comm, decomp, particles, exchange_buffers);
          PICPRK_DEBUG("rank " << comm.rank() << " step " << step
                               << ": x-diffusion moved boundaries");
        }
      }

      // Phase 2 (y), optional: same scheme along rows.
      if (lb.two_phase) {
        std::vector<std::uint64_t> row_loads(static_cast<std::size_t>(cart.py()), 0);
        row_loads[static_cast<std::size_t>(my_cy)] = particles.size();
        row_loads = comm.allreduce(
            std::span<const std::uint64_t>(row_loads),
            [](std::uint64_t a, std::uint64_t b) { return a + b; });
        std::uint64_t total = 0;
        for (auto v : row_loads) total += v;
        const double abs_threshold =
            lb.threshold * static_cast<double>(total) / static_cast<double>(cart.py());
        const auto old_yb = decomp.y_bounds();
        const auto new_yb =
            diffuse_bounds(old_yb, row_loads, abs_threshold, lb.border_width);
        if (new_yb != old_yb) {
          migrate_mesh_boundary(comm, slab, pattern, 1,
                                old_yb[static_cast<std::size_t>(my_cy)],
                                new_yb[static_cast<std::size_t>(my_cy)],
                                /*lower_side=*/false, cart.neighbor(comm.rank(), 0, -1),
                                mesh_stats);
          migrate_mesh_boundary(comm, slab, pattern, 1,
                                old_yb[static_cast<std::size_t>(my_cy) + 1],
                                new_yb[static_cast<std::size_t>(my_cy) + 1],
                                /*lower_side=*/true, cart.neighbor(comm.rank(), 0, 1),
                                mesh_stats);
          decomp.set_y_bounds(new_yb);
          rebuild_slab();
          exchange_particles(comm, decomp, particles, exchange_buffers);
        }
      }
    }
    if (inst.steps != nullptr) inst.steps->add();

    if (config.sample_every > 0 && step % config.sample_every == 0) {
      if (config.obs.active()) {
        const obs::StepSample sample = sample_step_telemetry(
            comm, static_cast<int>(step), particles.size(), compute_seconds);
        result.step_samples.push_back(sample);
        result.imbalance_series.push_back(sample.lambda);
      } else {
        result.imbalance_series.push_back(sample_imbalance(comm, particles.size()));
      }
    }
  }
  const double seconds = wall.elapsed();

  const pic::VerifyResult local_verify = verify_particles(
      std::span<const pic::Particle>(particles), grid, config.steps, config.verify_epsilon);
  finalize_result(
      comm, config, local_verify, tracker, particles.size(), seconds,
      PhaseBreakdown{compute_seconds, exchange_seconds, lb_seconds,
                     checkpoint_seconds},
      exchange_buffers.totals.sent, exchange_buffers.totals.bytes,
      mesh_stats.transfers, mesh_stats.bytes_sent, result);
  if (config.ft.active()) {
    result.checkpoints = checkpoint_rounds;
    result.checkpoint_bytes = comm.allreduce_value(
        checkpoint_bytes, [](std::uint64_t a, std::uint64_t b) { return a + b; });
  }
  return result;
}

}  // namespace picprk::par
