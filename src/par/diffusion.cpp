#include "par/diffusion.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "comm/cart.hpp"
#include "comm/mailbox.hpp"
#include "ft/coordinator.hpp"
#include "lb/registry.hpp"
#include "par/decomposition.hpp"
#include "par/exchange.hpp"
#include "par/resilient.hpp"
#include "pic/charge.hpp"
#include "pic/mover.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace picprk::par {

namespace {

using comm::kMeshTag;

struct MeshMigration {
  std::uint64_t bytes_sent = 0;
  std::uint64_t transfers = 0;
  std::vector<double> recv_scratch;  // reused across migrations (recv_into)
};

/// A contiguous run of mesh-point columns/rows one rank ships to
/// another, derived identically on every rank from the old/new bounds.
struct MeshTransfer {
  int partner = 0;
  std::int64_t lo = 0;  ///< half-open point range [lo, hi)
  std::int64_t hi = 0;
};

/// The provider point-interval of part `p` under `bounds`: part p owns
/// every mesh point whose clamped cell index falls in its old cell
/// range, i.e. points [bounds[p], bounds[p+1]) plus the domain-edge
/// point `cells` when p is the last part. Contiguous by construction.
std::pair<std::int64_t, std::int64_t> provider_points(
    const std::vector<std::int64_t>& bounds, std::size_t p) {
  const std::int64_t cells = bounds.back();
  const std::int64_t hi = bounds[p + 1];
  return {bounds[p], hi == cells ? cells + 1 : hi};  // half-open
}

/// Rebuilds this rank's charge slab for a new block by shipping the
/// mesh values that changed owner — the paper's "migrating the
/// underlying subgrids" cost. Unlike the original pairwise protocol
/// this matches providers and receivers globally, so a strategy that
/// moves a boundary past its old neighbor (rcb) works too; for
/// single-border diffusion moves it reduces to exactly the old
/// adjacent-rank exchange (same payloads, counts and bytes). Every
/// received value is checked against the analytic pattern — a protocol
/// error shows up immediately instead of corrupting forces.
///
/// `axis` is 0 for x-boundary moves (the bounds are processor-column
/// bounds; payloads are point columns), 1 for y. `my_index` is this
/// rank's coordinate along the axis; `rank_at` maps an axis coordinate
/// to the communicating rank (same row/column as this rank).
template <typename RankAt>
void migrate_mesh_axis(comm::Comm& comm, const pic::ChargeSlab& slab,
                       const pic::AlternatingColumnCharges& pattern, int axis,
                       const std::vector<std::int64_t>& old_b,
                       const std::vector<std::int64_t>& new_b, std::size_t my_index,
                       const RankAt& rank_at, MeshMigration& stats) {
  const std::size_t parts = old_b.size() - 1;

  // Intersection of `q`'s needed points (new range minus old range) with
  // this provider interval. The needed set has a left run (below the old
  // range) and a right run (above); a provider interval, being disjoint
  // from q's old interval, overlaps at most one of them.
  const auto needed_from = [&](std::size_t q, std::int64_t prov_lo,
                               std::int64_t prov_hi) -> std::pair<std::int64_t, std::int64_t> {
    const std::int64_t new_lo = new_b[q], new_hi = new_b[q + 1] + 1;  // half-open points
    const std::int64_t old_lo = old_b[q], old_hi = old_b[q + 1] + 1;
    // Left run [new_lo, old_lo), right run [old_hi, new_hi).
    const std::int64_t left_lo = std::max(new_lo, prov_lo);
    const std::int64_t left_hi = std::min(old_lo, prov_hi);
    if (left_hi > left_lo) return {left_lo, left_hi};
    const std::int64_t right_lo = std::max(old_hi, prov_lo);
    const std::int64_t right_hi = std::min(new_hi, prov_hi);
    if (right_hi > right_lo) return {right_lo, right_hi};
    return {0, 0};
  };

  // Outgoing: serve every other part from this rank's provider interval.
  std::vector<MeshTransfer> sends;
  {
    const auto [prov_lo, prov_hi] = provider_points(old_b, my_index);
    for (std::size_t q = 0; q < parts; ++q) {
      if (q == my_index) continue;
      const auto [lo, hi] = needed_from(q, prov_lo, prov_hi);
      if (hi > lo) sends.push_back(MeshTransfer{rank_at(q), lo, hi});
    }
  }
  // Incoming: this rank's needed points, grouped by provider.
  std::vector<MeshTransfer> recvs;
  for (std::size_t p = 0; p < parts; ++p) {
    if (p == my_index) continue;
    const auto [prov_lo, prov_hi] = provider_points(old_b, p);
    const auto [lo, hi] = needed_from(my_index, prov_lo, prov_hi);
    if (hi > lo) recvs.push_back(MeshTransfer{rank_at(p), lo, hi});
  }

  // Mailbox sends are buffered, so ship everything before receiving;
  // partner order is ascending on both sides, so per-pair streams match.
  for (const MeshTransfer& t : sends) {
    const std::vector<double> payload =
        axis == 0 ? slab.extract_columns(t.lo, t.hi) : slab.extract_rows(t.lo, t.hi);
    stats.bytes_sent += payload.size() * sizeof(double);
    ++stats.transfers;
    comm.send(payload, t.partner, kMeshTag);
  }
  for (const MeshTransfer& t : recvs) {
    comm.recv_into(stats.recv_scratch, t.partner, kMeshTag);
    const std::vector<double>& payload = stats.recv_scratch;
    ++stats.transfers;
    // Integrity check: the received subgrid must match the
    // specification pattern (columns depend only on the point x-index).
    const std::int64_t span0 = axis == 0 ? slab.height() : slab.width();
    PICPRK_ASSERT_MSG(payload.size() ==
                          static_cast<std::size_t>((t.hi - t.lo) * span0),
                      "mesh migration payload has the wrong size");
    std::size_t idx = 0;
    for (std::int64_t line = t.lo; line < t.hi; ++line) {
      for (std::int64_t j = 0; j < span0; ++j, ++idx) {
        const double expect = axis == 0 ? pattern.at(line, slab.y0() + j)
                                        : pattern.at(slab.x0() + j, line);
        PICPRK_ASSERT_MSG(payload[idx] == expect,
                          "mesh migration delivered corrupted charges");
      }
    }
  }
}

}  // namespace

DriverResult run_diffusion(comm::Comm& comm, const RunConfig& config) {
  const std::string spec =
      config.lb.strategy.empty() ? "diffusion" : config.lb.strategy;
  const std::unique_ptr<lb::Strategy> strategy = lb::make_strategy(spec);
  if (!strategy->balances_bounds()) {
    throw std::invalid_argument("lb: strategy '" + strategy->name() +
                                "' cannot move decomposition bounds (placement-only; "
                                "use the ampi driver)");
  }
  const std::uint32_t lb_every = config.lb.every;
  const lb::LoadMetric metric =
      config.lb.measured ? lb::LoadMetric::kComputeSeconds : lb::LoadMetric::kParticles;

  const comm::Cart2D cart(comm.size());
  Decomposition2D decomp(config.init.grid, cart);
  const pic::GridSpec& grid = config.init.grid;
  const auto [my_cx, my_cy] = cart.coords_of(comm.rank());

  const pic::Initializer init(config.init);
  pic::CellRegion block = decomp.block_of(comm.rank());
  // Production store is SoA + cell tiles; AoS only at wire boundaries.
  pic::ParticleSoA particles =
      pic::to_soa(init.create_block(block.x0, block.x1, block.y0, block.y1));
  pic::TileIndex tiles(block);
  const pic::AlternatingColumnCharges pattern(config.init.mesh_q);
  pic::ChargeSlab slab = pic::ChargeSlab::sample(
      pattern, block.x0, block.y0, block.width() + 1, block.height() + 1);

  EventTracker tracker(init, config.events);

  DriverResult result;
  double compute_seconds = 0.0, exchange_seconds = 0.0, lb_seconds = 0.0,
         checkpoint_seconds = 0.0;
  ExchangeBuffers exchange_buffers;  // steady-state exchange allocates nothing
  MeshMigration mesh_stats;
  util::Timer wall;

  // All registration/allocation happens here, before the step loop.
  const obs::StepInstruments inst(config.obs, "diffusion", 0,
                                  "rank " + std::to_string(comm.rank()), comm.rank(),
                                  static_cast<std::size_t>(config.steps) * 4 + 8);
  exchange_buffers.sent_counter = inst.exchange_sent;
  exchange_buffers.received_counter = inst.exchange_received;
  exchange_buffers.bytes_counter = inst.exchange_bytes;

  auto rebuild_slab = [&]() {
    block = decomp.block_of(comm.rank());
    slab = pic::ChargeSlab::sample(pattern, block.x0, block.y0, block.width() + 1,
                                   block.height() + 1);
    // The tile index follows the owned block; re-targeting marks it
    // dirty, so the next tiled move re-sorts against the new region.
    tiles.reset_region(block);
  };

  std::uint32_t start_step = 0;
  std::uint64_t checkpoint_rounds = 0, checkpoint_bytes = 0;
  if (config.ft.resume && config.ft.store != nullptr) {
    if (auto snap = restore_snapshot(comm.rank(), comm.size(), *config.ft.store)) {
      start_step = snap->step;
      // The decomposition moves under this driver: restore the boundary
      // vectors first, then rebuild the block and charge slab for them.
      decomp.set_x_bounds(snap->x_bounds);
      decomp.set_y_bounds(snap->y_bounds);
      rebuild_slab();
      particles.assign(std::span<const pic::Particle>(snap->particles));
      tiles.mark_dirty();
      tracker.restore_removed_sum(snap->removed_sum);
      exchange_buffers.totals.sent = snap->sent;
      exchange_buffers.totals.bytes = snap->bytes;
      mesh_stats.transfers = snap->lb_actions;
      mesh_stats.bytes_sent = snap->lb_bytes;
    }
  }

  // Measurement state for the strategy layer: compute seconds since the
  // last LB event (measured-load metric + the adaptive cost model) and
  // the step of that event (interval length).
  double interval_compute_start = 0.0;
  std::uint32_t last_lb_step = start_step;

  /// One boundary pass along `axis`. Aggregates per-part loads, asks
  /// the strategy for a plan, and applies it (mesh + particle
  /// migration). Returns true when the bounds changed.
  const auto balance_axis = [&](int axis, std::uint32_t step,
                                double interval_compute_mean) {
    const std::size_t parts =
        static_cast<std::size_t>(axis == 0 ? cart.px() : cart.py());
    const std::size_t my_index =
        static_cast<std::size_t>(axis == 0 ? my_cx : my_cy);
    std::vector<double> loads(parts, 0.0);
    loads[my_index] = metric == lb::LoadMetric::kComputeSeconds
                          ? compute_seconds - interval_compute_start
                          : static_cast<double>(particles.size());
    loads = comm.allreduce(std::span<const double>(loads),
                           [](double a, double b) { return a + b; });

    lb::BoundsInput input;
    input.metric = metric;
    input.axis = axis;
    input.step = step;
    input.interval_steps = step - last_lb_step;
    input.bounds = axis == 0 ? decomp.x_bounds() : decomp.y_bounds();
    input.loads = std::move(loads);
    input.interval_compute_seconds = interval_compute_mean;

    const std::vector<std::int64_t> old_b = input.bounds;
    const std::vector<std::int64_t> new_b = strategy->rebalance_bounds(input);
    PICPRK_ASSERT_MSG(new_b.size() == old_b.size() && new_b.front() == old_b.front() &&
                          new_b.back() == old_b.back(),
                      "lb strategy returned malformed bounds");
    if (new_b == old_b) return false;

    const auto rank_at = [&](std::size_t p) {
      return axis == 0 ? cart.rank_of(static_cast<int>(p), my_cy)
                       : cart.rank_of(my_cx, static_cast<int>(p));
    };
    migrate_mesh_axis(comm, slab, pattern, axis, old_b, new_b, my_index, rank_at,
                      mesh_stats);
    if (axis == 0) {
      decomp.set_x_bounds(new_b);
    } else {
      decomp.set_y_bounds(new_b);
    }
    rebuild_slab();
    exchange_particles(comm, decomp, particles, &tiles, exchange_buffers);
    PICPRK_DEBUG("rank " << comm.rank() << " step " << step << ": " << strategy->name()
                         << " moved axis-" << axis << " boundaries");
    return true;
  };

  // Localized recovery (docs/RESILIENCE.md): identical ladder rung to
  // run_baseline, plus the movable decomposition — the restore replays
  // the checkpointed bounds and rebuilds block/slab before re-entering
  // the loop, and the LB measurement interval restarts at the restored
  // step so the cost model never sees a half-replayed interval.
  ft::RecoveryCoordinator* coordinator =
      config.ft.localized() ? config.ft.coordinator : nullptr;
  std::uint32_t localized = 0, replayed = 0;
  const auto restore_local = [&](std::uint32_t failed_step) -> std::uint32_t {
    const std::uint32_t restore = coordinator->join(comm);
    auto snap = restore_snapshot(comm.rank(), comm.size(), *config.ft.store);
    PICPRK_ASSERT_MSG(snap && snap->step == restore,
                      "localized recovery: no snapshot at the agreed step");
    decomp.set_x_bounds(snap->x_bounds);
    decomp.set_y_bounds(snap->y_bounds);
    rebuild_slab();
    particles.assign(std::span<const pic::Particle>(snap->particles));
    tiles.mark_dirty();
    tracker.restore_removed_sum(snap->removed_sum);
    exchange_buffers.totals.sent = snap->sent;
    exchange_buffers.totals.bytes = snap->bytes;
    mesh_stats.transfers = snap->lb_actions;
    mesh_stats.bytes_sent = snap->lb_bytes;
    if (result.imbalance_series.size() > snap->samples) {
      result.imbalance_series.resize(snap->samples);
    }
    if (result.step_samples.size() > snap->samples) {
      result.step_samples.resize(snap->samples);
    }
    interval_compute_start = compute_seconds;
    last_lb_step = restore;
    replayed += failed_step - restore;
    ++localized;
    return restore;
  };

  std::uint32_t step = start_step;
  while (step < config.steps) {
    try {
    if (config.ft.checkpointing() && step % config.ft.checkpoint_every == 0) {
      obs::Phase phase(obs::kPhaseCheckpoint, &checkpoint_seconds, inst.lane,
                       inst.checkpoint);
      DriverSnapshot snap;
      snap.step = step;
      snap.x_bounds = decomp.x_bounds();
      snap.y_bounds = decomp.y_bounds();
      snap.particles = pic::to_aos(particles);  // wire form
      snap.removed_sum = tracker.removed_sum();
      snap.sent = exchange_buffers.totals.sent;
      snap.bytes = exchange_buffers.totals.bytes;
      snap.lb_actions = mesh_stats.transfers;
      snap.lb_bytes = mesh_stats.bytes_sent;
      snap.samples = result.imbalance_series.size();
      checkpoint_bytes += checkpoint_exchange(comm, *config.ft.store, snap);
      ++checkpoint_rounds;
    }
    if (config.ft.injector != nullptr) {
      config.ft.injector->begin_step(comm.world_rank(), step, &comm.abort_flag());
    }

    if (!config.events.empty()) tracker.apply(step, block, particles, &tiles);

    {
      obs::Phase phase(obs::kPhaseCompute, &compute_seconds, inst.lane, inst.compute);
      pic::move_all_tiled(particles, tiles, grid, slab, config.init.dt);
    }
#if defined(PICPRK_EXPENSIVE_CHECKS)
    PICPRK_ASSERT_MSG(!tiles.fresh() || tiles.check(particles, grid),
                      "tile index invariant broken after move");
#endif

    {
      obs::Phase phase(obs::kPhaseExchange, &exchange_seconds, inst.lane,
                       inst.exchange);
      exchange_particles(comm, decomp, particles, &tiles, exchange_buffers);
    }

    if (lb_every > 0 && step > 0 && step % lb_every == 0) {
      obs::Phase phase(obs::kPhaseLb, &lb_seconds, inst.lane, inst.lb);
      const double lb_event_start_seconds = lb_seconds;
      const std::uint64_t mesh_bytes_before = mesh_stats.bytes_sent;
      const std::uint64_t sent_before = exchange_buffers.totals.sent;

      // Cost-model strategies additionally read the measured per-rank
      // compute time of the closing interval (globally reduced so their
      // internal state stays rank-identical).
      double interval_compute_mean = 0.0;
      if (strategy->wants_feedback()) {
        const double local = compute_seconds - interval_compute_start;
        interval_compute_mean =
            comm.allreduce_value(local, [](double a, double b) { return a + b; }) /
            static_cast<double>(comm.size());
      }

      // Phase 1 (x): the paper's experiments restrict balancing to the
      // drift direction; phase 2 (y) runs when the strategy asks.
      bool moved = balance_axis(0, step, interval_compute_mean);
      if (strategy->wants_y_phase()) {
        moved = balance_axis(1, step, interval_compute_mean) || moved;
      }

      if (inst.lb_decisions != nullptr) {
        inst.lb_decisions->add();
        (moved ? inst.lb_rebalances : inst.lb_skipped)->add();
      }
      if (strategy->wants_feedback()) {
        lb::ApplyFeedback feedback;
        if (moved) {
          phase.finish();  // close the timer so the event cost is real
          const double local_cost = lb_seconds - lb_event_start_seconds;
          feedback.lb_seconds = comm.allreduce_value(
              local_cost, [](double a, double b) { return std::max(a, b); });
          feedback.moved_load = static_cast<double>(comm.allreduce_value(
              exchange_buffers.totals.sent - sent_before,
              [](std::uint64_t a, std::uint64_t b) { return a + b; }));
          feedback.moved_bytes = comm.allreduce_value(
              mesh_stats.bytes_sent - mesh_bytes_before,
              [](std::uint64_t a, std::uint64_t b) { return a + b; });
        }
        strategy->note_applied(feedback);
      }
      interval_compute_start = compute_seconds;
      last_lb_step = step;
    }
    if (inst.steps != nullptr) inst.steps->add();

    if (config.sample_every > 0 && step % config.sample_every == 0) {
      if (config.obs.active()) {
        const obs::StepSample sample = sample_step_telemetry(
            comm, static_cast<int>(step), particles.size(), compute_seconds);
        result.step_samples.push_back(sample);
        result.imbalance_series.push_back(sample.lambda);
      } else {
        result.imbalance_series.push_back(sample_imbalance(comm, particles.size()));
      }
    }
    ++step;
    } catch (const ft::RankKilled& e) {
      if (coordinator == nullptr) throw;
      coordinator->declare_dead(e.rank(), e.step());
      step = restore_local(step);
    } catch (const comm::RecvInterrupted&) {
      if (coordinator == nullptr) throw;
      step = restore_local(step);
    }
  }
  const double seconds = wall.elapsed();

  const std::vector<pic::Particle> final_particles = pic::to_aos(particles);
  const pic::VerifyResult local_verify =
      verify_particles(std::span<const pic::Particle>(final_particles), grid,
                       config.steps, config.verify_epsilon);
  finalize_result(
      comm, config, local_verify, tracker, particles.size(), seconds,
      PhaseBreakdown{compute_seconds, exchange_seconds, lb_seconds,
                     checkpoint_seconds},
      exchange_buffers.totals.sent, exchange_buffers.totals.bytes,
      mesh_stats.transfers, mesh_stats.bytes_sent, result);
  if (config.ft.active()) {
    result.checkpoints = checkpoint_rounds;
    result.checkpoint_bytes = comm.allreduce_value(
        checkpoint_bytes, [](std::uint64_t a, std::uint64_t b) { return a + b; });
    result.localized_recoveries = localized;
    result.replayed_steps = comm.allreduce_value(
        replayed, [](std::uint32_t a, std::uint32_t b) { return a > b ? a : b; });
  }
  return result;
}

}  // namespace picprk::par
