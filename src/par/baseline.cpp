#include "par/baseline.hpp"

#include "par/decomposition.hpp"
#include "par/exchange.hpp"
#include "par/resilient.hpp"
#include "pic/charge.hpp"
#include "pic/mover.hpp"
#include "util/timer.hpp"

namespace picprk::par {

DriverResult run_baseline(comm::Comm& comm, const DriverConfig& config) {
  const comm::Cart2D cart(comm.size());
  const Decomposition2D decomp(config.init.grid, cart);
  const pic::GridSpec& grid = config.init.grid;
  const pic::CellRegion block = decomp.block_of(comm.rank());

  const pic::Initializer init(config.init);
  std::vector<pic::Particle> particles =
      init.create_block(block.x0, block.x1, block.y0, block.y1);
  const pic::AlternatingColumnCharges pattern(config.init.mesh_q);
  const pic::ChargeSlab slab = pic::ChargeSlab::sample(
      pattern, block.x0, block.y0, block.width() + 1, block.height() + 1);

  EventTracker tracker(init, config.events);

  DriverResult result;
  util::PhaseTimer compute_timer, exchange_timer;
  std::uint64_t sent = 0, bytes = 0;
  ExchangeBuffers exchange_buffers;  // steady-state exchange allocates nothing

  std::uint32_t start_step = 0;
  std::uint64_t checkpoint_rounds = 0, checkpoint_bytes = 0;
  if (config.ft.resume && config.ft.store != nullptr) {
    if (auto snap = restore_snapshot(comm.rank(), comm.size(), *config.ft.store)) {
      start_step = snap->step;
      particles = std::move(snap->particles);
      tracker.restore_removed_sum(snap->removed_sum);
      sent = snap->sent;
      bytes = snap->bytes;
    }
  }

  util::Timer wall;
  for (std::uint32_t step = start_step; step < config.steps; ++step) {
    // Snapshot the start-of-step state, then poll scripted step faults;
    // a kill at a checkpoint step therefore rolls back to that step.
    if (config.ft.checkpointing() && step % config.ft.checkpoint_every == 0) {
      DriverSnapshot snap;
      snap.step = step;
      snap.particles = particles;
      snap.removed_sum = tracker.removed_sum();
      snap.sent = sent;
      snap.bytes = bytes;
      checkpoint_bytes += checkpoint_exchange(comm, *config.ft.store, snap);
      ++checkpoint_rounds;
    }
    if (config.ft.injector != nullptr) {
      config.ft.injector->begin_step(comm.world_rank(), step, &comm.abort_flag());
    }

    if (!config.events.empty()) tracker.apply(step, block, particles);

    compute_timer.start();
    if (config.omp_mover) {
      pic::move_all_omp(std::span<pic::Particle>(particles), grid, slab, config.init.dt);
    } else {
      pic::move_all(std::span<pic::Particle>(particles), grid, slab, config.init.dt);
    }
    compute_timer.stop();

    exchange_timer.start();
    const ExchangeStats stats = exchange_particles(comm, decomp, particles, exchange_buffers);
    exchange_timer.stop();
    sent += stats.sent;
    bytes += stats.bytes;

    if (config.sample_every > 0 && step % config.sample_every == 0) {
      result.imbalance_series.push_back(sample_imbalance(comm, particles.size()));
    }
  }
  const double seconds = wall.elapsed();

  const pic::VerifyResult local_verify = verify_particles(
      std::span<const pic::Particle>(particles), grid, config.steps, config.verify_epsilon);
  finalize_result(comm, config, local_verify, tracker, particles.size(), seconds,
                  PhaseBreakdown{compute_timer.total(), exchange_timer.total(), 0.0}, sent,
                  bytes, 0, 0, result);
  if (config.ft.active()) {
    result.checkpoints = checkpoint_rounds;
    result.checkpoint_bytes = comm.allreduce_value(
        checkpoint_bytes, [](std::uint64_t a, std::uint64_t b) { return a + b; });
  }
  return result;
}

}  // namespace picprk::par
