#include "par/baseline.hpp"

#include <string>

#include "comm/mailbox.hpp"
#include "ft/coordinator.hpp"
#include "par/decomposition.hpp"
#include "par/exchange.hpp"
#include "par/resilient.hpp"
#include "pic/charge.hpp"
#include "pic/mover.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace picprk::par {

DriverResult run_baseline(comm::Comm& comm, const DriverConfig& config) {
  const comm::Cart2D cart(comm.size());
  const Decomposition2D decomp(config.init.grid, cart);
  const pic::GridSpec& grid = config.init.grid;
  const pic::CellRegion block = decomp.block_of(comm.rank());

  const pic::Initializer init(config.init);
  // Production store is SoA + cell tiles; the AoS form only appears at
  // wire boundaries (checkpoints, verification).
  pic::ParticleSoA particles =
      pic::to_soa(init.create_block(block.x0, block.x1, block.y0, block.y1));
  pic::TileIndex tiles(block);
  const pic::AlternatingColumnCharges pattern(config.init.mesh_q);
  const pic::ChargeSlab slab = pic::ChargeSlab::sample(
      pattern, block.x0, block.y0, block.width() + 1, block.height() + 1);

  EventTracker tracker(init, config.events);

  DriverResult result;
  double compute_seconds = 0.0, exchange_seconds = 0.0, checkpoint_seconds = 0.0;
  ExchangeBuffers exchange_buffers;  // steady-state exchange allocates nothing

  // All registration/allocation happens here, before the step loop.
  const obs::StepInstruments inst(config.obs, "baseline", 0,
                                  "rank " + std::to_string(comm.rank()), comm.rank(),
                                  static_cast<std::size_t>(config.steps) * 4 + 8);
  exchange_buffers.sent_counter = inst.exchange_sent;
  exchange_buffers.received_counter = inst.exchange_received;
  exchange_buffers.bytes_counter = inst.exchange_bytes;

  std::uint32_t start_step = 0;
  std::uint64_t checkpoint_rounds = 0, checkpoint_bytes = 0;
  if (config.ft.resume && config.ft.store != nullptr) {
    if (auto snap = restore_snapshot(comm.rank(), comm.size(), *config.ft.store)) {
      start_step = snap->step;
      particles.assign(std::span<const pic::Particle>(snap->particles));
      tiles.mark_dirty();
      tracker.restore_removed_sum(snap->removed_sum);
      exchange_buffers.totals.sent = snap->sent;
      exchange_buffers.totals.bytes = snap->bytes;
    }
  }

  // Localized recovery (docs/RESILIENCE.md): on a confirmed rank kill
  // every rank — the logical victim's thread survives in-process and is
  // promoted as its own spare — rendezvouses at the coordinator, only
  // the dead rank restores from its buddy copy and everyone replays at
  // most one step. Null coordinator = classical full-run rollback.
  ft::RecoveryCoordinator* coordinator =
      config.ft.localized() ? config.ft.coordinator : nullptr;
  std::uint32_t localized = 0, replayed = 0;
  const auto restore_local = [&](std::uint32_t failed_step) -> std::uint32_t {
    const std::uint32_t restore = coordinator->join(comm);
    auto snap = restore_snapshot(comm.rank(), comm.size(), *config.ft.store);
    PICPRK_ASSERT_MSG(snap && snap->step == restore,
                      "localized recovery: no snapshot at the agreed step");
    particles.assign(std::span<const pic::Particle>(snap->particles));
    tiles.mark_dirty();
    tracker.restore_removed_sum(snap->removed_sum);
    exchange_buffers.totals.sent = snap->sent;
    exchange_buffers.totals.bytes = snap->bytes;
    // Samples taken during the replayed fraction are discarded — the
    // series must read as if the failure never happened.
    if (result.imbalance_series.size() > snap->samples) {
      result.imbalance_series.resize(snap->samples);
    }
    if (result.step_samples.size() > snap->samples) {
      result.step_samples.resize(snap->samples);
    }
    replayed += failed_step - restore;
    ++localized;
    return restore;
  };

  util::Timer wall;
  std::uint32_t step = start_step;
  while (step < config.steps) {
    try {
    // Snapshot the start-of-step state, then poll scripted step faults;
    // a kill at a checkpoint step therefore rolls back to that step.
    if (config.ft.checkpointing() && step % config.ft.checkpoint_every == 0) {
      obs::Phase phase(obs::kPhaseCheckpoint, &checkpoint_seconds, inst.lane,
                       inst.checkpoint);
      DriverSnapshot snap;
      snap.step = step;
      snap.particles = pic::to_aos(particles);  // wire form
      snap.removed_sum = tracker.removed_sum();
      snap.sent = exchange_buffers.totals.sent;
      snap.bytes = exchange_buffers.totals.bytes;
      snap.samples = result.imbalance_series.size();
      checkpoint_bytes += checkpoint_exchange(comm, *config.ft.store, snap);
      ++checkpoint_rounds;
    }
    if (config.ft.injector != nullptr) {
      config.ft.injector->begin_step(comm.world_rank(), step, &comm.abort_flag());
    }

    if (!config.events.empty()) tracker.apply(step, block, particles, &tiles);

    {
      obs::Phase phase(obs::kPhaseCompute, &compute_seconds, inst.lane, inst.compute);
      if (config.omp_mover) {
        // Hybrid path: flat SoA mover with the rank's OpenMP team. The
        // tile index just stays dirty (only the tiled mover freshens it).
        pic::move_all_soa(particles, grid, slab, config.init.dt);
      } else {
        pic::move_all_tiled(particles, tiles, grid, slab, config.init.dt);
      }
    }
#if defined(PICPRK_EXPENSIVE_CHECKS)
    PICPRK_ASSERT_MSG(!tiles.fresh() || tiles.check(particles, grid),
                      "tile index invariant broken after move");
#endif

    {
      obs::Phase phase(obs::kPhaseExchange, &exchange_seconds, inst.lane,
                       inst.exchange);
      exchange_particles(comm, decomp, particles, &tiles, exchange_buffers);
    }
    if (inst.steps != nullptr) inst.steps->add();

    if (config.sample_every > 0 && step % config.sample_every == 0) {
      if (config.obs.active()) {
        const obs::StepSample sample = sample_step_telemetry(
            comm, static_cast<int>(step), particles.size(), compute_seconds);
        result.step_samples.push_back(sample);
        result.imbalance_series.push_back(sample.lambda);
      } else {
        result.imbalance_series.push_back(sample_imbalance(comm, particles.size()));
      }
    }
    ++step;
    } catch (const ft::RankKilled& e) {
      if (coordinator == nullptr) throw;
      coordinator->declare_dead(e.rank(), e.step());
      step = restore_local(step);
    } catch (const comm::RecvInterrupted&) {
      if (coordinator == nullptr) throw;
      step = restore_local(step);
    }
  }
  const double seconds = wall.elapsed();

  const std::vector<pic::Particle> final_particles = pic::to_aos(particles);
  const pic::VerifyResult local_verify =
      verify_particles(std::span<const pic::Particle>(final_particles), grid,
                       config.steps, config.verify_epsilon);
  finalize_result(
      comm, config, local_verify, tracker, particles.size(), seconds,
      PhaseBreakdown{compute_seconds, exchange_seconds, 0.0, checkpoint_seconds},
      exchange_buffers.totals.sent, exchange_buffers.totals.bytes, 0, 0, result);
  if (config.ft.active()) {
    result.checkpoints = checkpoint_rounds;
    result.checkpoint_bytes = comm.allreduce_value(
        checkpoint_bytes, [](std::uint64_t a, std::uint64_t b) { return a + b; });
    result.localized_recoveries = localized;
    result.replayed_steps = comm.allreduce_value(
        replayed, [](std::uint32_t a, std::uint32_t b) { return a > b ? a : b; });
  }
  return result;
}

}  // namespace picprk::par
