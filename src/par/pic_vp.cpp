#include "par/pic_vp.hpp"

#include <cstring>

#include "ft/fault.hpp"
#include "pic/mover.hpp"
#include "util/assert.hpp"
#include "vpr/pup.hpp"

namespace picprk::par {

PicVp::PicVp(int id, std::shared_ptr<const PicVpShared> shared)
    : VirtualProcessor(id), shared_(std::move(shared)) {
  block_ = shared_->vp_block(id);
  tiles_.reset_region(block_);
  const pic::AlternatingColumnCharges pattern(shared_->init_params.mesh_q);
  slab_ = pic::ChargeSlab::sample(pattern, block_.x0, block_.y0, block_.width() + 1,
                                  block_.height() + 1);
}

void PicVp::populate() {
  particles_ = pic::to_soa(
      shared_->init.create_block(block_.x0, block_.x1, block_.y0, block_.y1));
  tiles_.mark_dirty();
}

void PicVp::step(vpr::VpContext& ctx) {
  const pic::GridSpec& grid = shared_->init_params.grid;
  const std::uint32_t step = ctx.step();

  // Scripted step faults address VPs here (there are no world ranks).
  // No abort flag exists under vpr, so finite stalls sleep in full;
  // infinite stalls (ms=inf) are a threadcomm-only scenario.
  if (shared_->ft.injector != nullptr) {
    shared_->ft.injector->begin_step(id(), step);
  }

  // Events are rare: stage through the AoS wire form only on steps
  // where something is scheduled (free otherwise).
  if (!shared_->events.empty() && shared_->events.scheduled_at(step)) {
    std::vector<pic::Particle> staging = pic::to_aos(particles_);
    for (std::size_t e = 0; e < shared_->events.removals().size(); ++e) {
      if (shared_->events.removals()[e].step != step) continue;
      const pic::CellRegion& region = shared_->events.removals()[e].region;
      for (const pic::Particle& p : staging) {
        const auto cx = grid.cell_of(p.x);
        const auto cy = grid.cell_of(p.y);
        if (region.contains_cell(cx, cy) && shared_->events.removes(shared_->init, e, p.id)) {
          removed_id_sum_ += p.id;
        }
      }
    }
    shared_->events.apply_step(shared_->init, step, block_.x0, block_.x1, block_.y0,
                               block_.y1, staging);
    particles_.assign(staging);
    tiles_.mark_dirty();
  }

  pic::move_all_tiled(particles_, tiles_, grid, slab_, shared_->init_params.dt);

  // Route emigrants to their owner VPs (static VP decomposition). All
  // routing scratch is VP-owned and reused every step; outgoing byte
  // payloads come from the pool that recycles delivered messages, so
  // steady-state routing allocates nothing. Keepers compact stably in
  // place (tile ranges shrink without a re-sort); emigrants leave as
  // AoS wire records.
  route_dst_.clear();
  const std::size_t n = particles_.size();
  route_owner_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    route_owner_[i] = shared_->owner_vp(particles_.x[i], particles_.y[i]);
  }
  std::size_t w = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const int owner = route_owner_[i];
    if (owner == id()) {
      if (w != i) particles_.move_row(w, i);
      ++w;
      continue;
    }
    std::size_t b = 0;
    while (b < route_dst_.size() && route_dst_[b] != owner) ++b;
    if (b == route_dst_.size()) {
      route_dst_.push_back(owner);
      if (route_buckets_.size() < route_dst_.size()) route_buckets_.emplace_back();
      route_buckets_[b].clear();
    }
    route_buckets_[b].push_back(particles_.get(i));
  }
  particles_.truncate(w);
  tiles_.compact_ranges(std::span<const int>(route_owner_.data(), n), id());
  for (std::size_t b = 0; b < route_dst_.size(); ++b) {
    const std::vector<pic::Particle>& bucket = route_buckets_[b];
    sent_particles_ += bucket.size();
    std::vector<std::byte> bytes = byte_pool_.acquire(bucket.size() * sizeof(pic::Particle));
    std::memcpy(bytes.data(), bucket.data(), bytes.size());
    ctx.send(route_dst_[b], std::move(bytes));
  }
}

void PicVp::deliver(int /*src_vp*/, std::vector<std::byte> payload) {
  PICPRK_ASSERT(payload.size() % sizeof(pic::Particle) == 0);
  const std::size_t count = payload.size() / sizeof(pic::Particle);
  if (count > 0) {
    // Wire records land in the untiled tail; the tile index stays
    // valid and the next move's flat pass covers them.
    recv_scratch_.resize(count);
    std::memcpy(recv_scratch_.data(), payload.data(), payload.size());
    particles_.append(std::span<const pic::Particle>(recv_scratch_));
  }
  byte_pool_.release(std::move(payload));  // becomes next step's send staging
}

std::vector<int> PicVp::neighbor_vps() const {
  // 4-neighborhood on the periodic VP grid.
  const auto& cart = shared_->vcart;
  return {cart.neighbor(id(), 1, 0), cart.neighbor(id(), -1, 0),
          cart.neighbor(id(), 0, 1), cart.neighbor(id(), 0, -1)};
}

void PicVp::pup(vpr::Pup& p) {
  // Complete VP state: subdomain coordinates, the subgrid charges (the
  // data a distributed runtime would ship), and the particles.
  p(block_.x0);
  p(block_.x1);
  p(block_.y0);
  p(block_.y1);
  std::int64_t sx0 = slab_.x0(), sy0 = slab_.y0(), sw = slab_.width(), sh = slab_.height();
  p(sx0);
  p(sy0);
  p(sw);
  p(sh);
  if (p.unpacking()) {
    std::vector<double> values;
    p(values);
    slab_ = pic::ChargeSlab::from_values(sx0, sy0, sw, sh, std::move(values));
  } else {
    // Pack the live slab values in row-major order (matching
    // from_values above).
    std::vector<double> values;
    values.reserve(static_cast<std::size_t>(sw * sh));
    for (std::int64_t j = 0; j < sh; ++j)
      for (std::int64_t i = 0; i < sw; ++i) values.push_back(slab_.at(sx0 + i, sy0 + j));
    p(values);
  }
  particles_.pup(p);  // stages through the AoS wire form
  p(removed_id_sum_);
  p(sent_particles_);
  if (p.unpacking()) tiles_.mark_dirty();
}

std::uint64_t vpr_expected_checksum(const pic::Initializer& init,
                                    const pic::EventSchedule& events,
                                    std::uint64_t removed_id_sum) {
  std::uint64_t expected = pic::expected_checksum(init.total());
  for (std::size_t e = 0; e < events.injections().size(); ++e) {
    const std::uint64_t first = events.injection_first_id(init, e);
    const std::uint64_t count = events.injection_total(init, e);
    if (count > 0) expected += count * first + count * (count - 1) / 2;
  }
  return expected - removed_id_sum;
}

void accumulate_vp_verification(const PicVp& vp, const DriverConfig& config,
                                VpVerifyTally& tally) {
  const std::vector<pic::Particle> aos = pic::to_aos(vp.particles());
  tally.verify = pic::merge(
      tally.verify, pic::verify_particles(std::span<const pic::Particle>(aos),
                                          config.init.grid, config.steps,
                                          config.verify_epsilon));
  tally.removed_id_sum += vp.removed_id_sum();
  tally.sent_particles += vp.sent_particles();
}

}  // namespace picprk::par
