// The boundary-balanced implementation — "mpi-2d-LB" in the paper
// (§IV-B), generalized: the decomposition's movable column/row bounds
// are repartitioned by any bounds-capable lb::Strategy from the
// registry (RunConfig::lb.strategy). The default, "diffusion", is the
// paper's scheme à la Cybenko: every `lb.every` steps, per-processor-
// column loads are aggregated and adjacent columns whose loads differ
// by more than a threshold exchange border cell-columns (grid data and
// the particles residing there). "rcb" instead jumps straight to the
// globally bisected partition; "adaptive" wraps either behind a cost
// model. Mesh subgrids really travel (and are integrity-checked) for
// every boundary move, adjacent or not.
#pragma once

#include "par/run_config.hpp"

namespace picprk::par {

/// Runs the boundary-balancing driver; collective over `comm`. The
/// strategy spec defaults to "diffusion" when RunConfig::lb.strategy is
/// empty; specs that cannot move bounds are rejected.
DriverResult run_diffusion(comm::Comm& comm, const RunConfig& config);

}  // namespace picprk::par
