// The application-specific load-balanced implementation, "mpi-2d-LB" in
// the paper (§IV-B): a diffusion scheme à la Cybenko over the 2-D block
// decomposition. Every `frequency` steps, per-processor-column particle
// counts are aggregated; adjacent columns whose loads differ by more than
// a threshold exchange `border_width` cell-columns (grid data and the
// particles residing there) across the shared boundary. The paper's
// experiments restrict diffusion to the x-direction (the drift direction
// of the skewed distribution); the full two-phase x+y variant is provided
// as an extension.
#pragma once

#include <cstdint>
#include <vector>

#include "par/driver_common.hpp"

namespace picprk::par {

struct DiffusionParams {
  /// Steps between load-balancing attempts (the paper's co-tuned knob).
  std::uint32_t frequency = 16;
  /// Trigger threshold τ, relative to the ideal per-column load: migrate
  /// when |N_I − N_{I+1}| > threshold · (total / Px).
  double threshold = 0.10;
  /// Cell-columns (or rows) moved per triggered boundary per LB step.
  std::int64_t border_width = 1;
  /// Also balance in y (phase 2 of §IV-B). Off for the paper's runs.
  bool two_phase = false;
};

/// Runs the diffusion-LB driver; collective over `comm`.
DriverResult run_diffusion(comm::Comm& comm, const DriverConfig& config,
                           const DiffusionParams& lb);

/// Pure decision function (exposed for tests and the performance model):
/// given current boundaries and per-part loads, returns the diffused
/// boundaries. Deterministic; every rank computes the same answer.
std::vector<std::int64_t> diffuse_bounds(const std::vector<std::int64_t>& bounds,
                                         const std::vector<std::uint64_t>& loads,
                                         double abs_threshold, std::int64_t width);

}  // namespace picprk::par
