#include "par/exchange.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace picprk::par {

ExchangeStats exchange_particles(comm::Comm& comm, const Decomposition2D& decomp,
                                 std::vector<pic::Particle>& mine) {
  const int p = comm.size();
  const int me = comm.rank();

  std::vector<std::vector<pic::Particle>> outgoing(static_cast<std::size_t>(p));
  std::vector<pic::Particle> keep;
  keep.reserve(mine.size());
  for (const pic::Particle& particle : mine) {
    const int owner = decomp.owner_of_position(particle.x, particle.y);
    if (owner == me) {
      keep.push_back(particle);
    } else {
      outgoing[static_cast<std::size_t>(owner)].push_back(particle);
    }
  }

  ExchangeStats stats;
  for (int r = 0; r < p; ++r) {
    if (r == me) continue;
    const auto& bucket = outgoing[static_cast<std::size_t>(r)];
    stats.sent += bucket.size();
    stats.bytes += bucket.size() * sizeof(pic::Particle);
  }

  auto incoming = comm.alltoall(outgoing);
  mine = std::move(keep);
  for (int r = 0; r < p; ++r) {
    if (r == me) continue;
    const auto& bucket = incoming[static_cast<std::size_t>(r)];
    stats.received += bucket.size();
    mine.insert(mine.end(), bucket.begin(), bucket.end());
  }

  // Post-condition: everything we now hold is ours.
  const pic::CellRegion block = decomp.block_of(me);
  for (const pic::Particle& particle : mine) {
    const auto cx = decomp.grid().cell_of(particle.x);
    const auto cy = decomp.grid().cell_of(particle.y);
    PICPRK_ASSERT_MSG(block.contains_cell(cx, cy),
                      "exchange delivered a particle to the wrong rank");
  }
  return stats;
}

}  // namespace picprk::par
