#include "par/exchange.hpp"

#include "util/assert.hpp"

namespace picprk::par {

ExchangeStats exchange_particles(comm::Comm& comm, const Decomposition2D& decomp,
                                 std::vector<pic::Particle>& mine,
                                 ExchangeBuffers& buffers) {
  ExchangeStats stats = exchange_particles_by(
      comm, [&decomp](double x, double y) { return decomp.owner_of_position(x, y); }, mine,
      buffers);

#if defined(PICPRK_EXPENSIVE_CHECKS)
  // Post-condition: everything we now hold is ours. O(n) per step, so
  // only compiled into PICPRK_EXPENSIVE_CHECKS builds.
  const pic::CellRegion block = decomp.block_of(comm.rank());
  for (const pic::Particle& particle : mine) {
    const auto cx = decomp.grid().cell_of(particle.x);
    const auto cy = decomp.grid().cell_of(particle.y);
    PICPRK_ASSERT_MSG(block.contains_cell(cx, cy),
                      "exchange delivered a particle to the wrong rank");
  }
#endif
  return stats;
}

ExchangeStats exchange_particles(comm::Comm& comm, const Decomposition2D& decomp,
                                 std::vector<pic::Particle>& mine) {
  ExchangeBuffers buffers;
  return exchange_particles(comm, decomp, mine, buffers);
}

ExchangeStats exchange_particles(comm::Comm& comm, const Decomposition2D& decomp,
                                 pic::ParticleSoA& mine, pic::TileIndex* tiles,
                                 ExchangeBuffers& buffers) {
  ExchangeStats stats = exchange_particles_by(
      comm, [&decomp](double x, double y) { return decomp.owner_of_position(x, y); },
      mine, tiles, buffers);

#if defined(PICPRK_EXPENSIVE_CHECKS)
  // Post-conditions: everything we now hold is ours, and a maintained
  // tile index still partitions the store correctly after the
  // compaction. O(n) per step, so PICPRK_EXPENSIVE_CHECKS only.
  const pic::CellRegion block = decomp.block_of(comm.rank());
  for (std::size_t i = 0; i < mine.size(); ++i) {
    const auto cx = decomp.grid().cell_of(mine.x[i]);
    const auto cy = decomp.grid().cell_of(mine.y[i]);
    PICPRK_ASSERT_MSG(block.contains_cell(cx, cy),
                      "exchange delivered a particle to the wrong rank");
  }
  if (tiles != nullptr && tiles->fresh()) {
    PICPRK_ASSERT_MSG(tiles->check(mine, decomp.grid()),
                      "exchange compaction broke the tile index");
  }
#endif
  return stats;
}

}  // namespace picprk::par
