// The over-decomposed PIC subdomain as a vpr::VirtualProcessor — the
// unit of work the ampi driver (§IV-C) runs under the vpr runtime.
// Extracted from ampi.cpp so the svc job server (docs/SERVICE.md) can
// host many independent kernel instances: each svc::Job builds its own
// PicVpShared + VP set and steps them through a private runtime, while
// run_ampi keeps using exactly the same classes for its single-job run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "comm/cart.hpp"
#include "comm/comm.hpp"
#include "ft/options.hpp"
#include "par/driver_common.hpp"
#include "pic/charge.hpp"
#include "pic/tiling.hpp"
#include "vpr/vp.hpp"

namespace picprk::par {

/// Problem state shared (read-only) by all VPs of one kernel instance.
struct PicVpShared {
  pic::InitParams init_params;
  pic::Initializer init;
  pic::EventSchedule events;
  comm::Cart2D vcart;  ///< VP grid (Vx × Vy)
  ft::FtOptions ft;    ///< fault/checkpoint hooks; rank space = VP ids

  PicVpShared(const DriverConfig& config, int vps)
      : init_params(config.init),
        init(config.init),
        events(config.events),
        vcart(vps),
        ft(config.ft) {}

  pic::CellRegion vp_block(int vp) const {
    const auto [vx, vy] = vcart.coords_of(vp);
    const auto xr = comm::block_range(init_params.grid.cells, vcart.px(), vx);
    const auto yr = comm::block_range(init_params.grid.cells, vcart.py(), vy);
    return pic::CellRegion{xr.lo, xr.hi, yr.lo, yr.hi};
  }

  int owner_vp(double x, double y) const {
    const auto cx = init_params.grid.cell_of(x);
    const auto cy = init_params.grid.cell_of(y);
    const int vx = comm::block_owner(init_params.grid.cells, vcart.px(), cx);
    const int vy = comm::block_owner(init_params.grid.cells, vcart.py(), cy);
    return vcart.rank_of(vx, vy);
  }
};

/// One subdomain of the over-decomposed PIC problem.
class PicVp final : public vpr::VirtualProcessor {
 public:
  PicVp(int id, std::shared_ptr<const PicVpShared> shared);

  /// Loads the initial particle population (called once, not on
  /// migration — migrated state arrives via pup()).
  void populate();

  void step(vpr::VpContext& ctx) override;
  void deliver(int src_vp, std::vector<std::byte> payload) override;
  double load() const override { return static_cast<double>(particles_.size()); }
  std::vector<int> neighbor_vps() const override;
  void pup(vpr::Pup& p) override;

  const pic::ParticleSoA& particles() const { return particles_; }
  std::uint64_t removed_id_sum() const { return removed_id_sum_; }
  std::uint64_t sent_particles() const { return sent_particles_; }

 private:
  // Members below are either serialized in pup() or tagged pup:transient;
  // picprk-lint's pup rule rejects an untagged member missing from pup().
  std::shared_ptr<const PicVpShared> shared_;  // pup:transient — re-injected by the factory
  pic::CellRegion block_;
  pic::ChargeSlab slab_;
  pic::ParticleSoA particles_;
  pic::TileIndex tiles_;  // pup:transient — rebuilt from the store after unpack
  std::uint64_t removed_id_sum_ = 0;
  std::uint64_t sent_particles_ = 0;
  // Routing scratch: a migrated VP simply re-warms its buffers.
  std::vector<int> route_owner_;                           // pup:transient
  std::vector<std::vector<pic::Particle>> route_buckets_;  // pup:transient
  std::vector<int> route_dst_;                             // pup:transient
  std::vector<pic::Particle> recv_scratch_;                // pup:transient
  comm::BufferPool byte_pool_;                             // pup:transient
};

/// The closed-form id checksum a finished vpr-hosted kernel instance
/// must reproduce: Σ id over the initial population (n(n+1)/2 by
/// construction), plus every scheduled injection's id range, minus the
/// ids actually removed (summed over the VPs). Shared by run_ampi and
/// the svc job server so both verify against the identical invariant.
std::uint64_t vpr_expected_checksum(const pic::Initializer& init,
                                    const pic::EventSchedule& events,
                                    std::uint64_t removed_id_sum);

/// End-of-run verification tallies over a set of vpr-hosted PicVps.
struct VpVerifyTally {
  pic::VerifyResult verify;
  std::uint64_t removed_id_sum = 0;
  std::uint64_t sent_particles = 0;
};

/// Folds one VP's final population into the closed-form check: position
/// verification against the analytic trajectory plus the removed-id and
/// sent-particle tallies that feed `vpr_expected_checksum`. Shared by
/// run_ampi, run_async and svc::Job so every host of the VP classes
/// finalizes against the identical invariant.
void accumulate_vp_verification(const PicVp& vp, const DriverConfig& config,
                                VpVerifyTally& tally);

}  // namespace picprk::par
