// Shared scaffolding of the parallel PIC drivers: configuration, result
// records, event bookkeeping and verification merging. The three drivers
// (baseline, diffusion-LB, ampi/vpr) share these so that their outputs
// are directly comparable — the essence of using the PRK as a measuring
// instrument.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/comm.hpp"
#include "ft/options.hpp"
#include "obs/phase.hpp"
#include "obs/sinks.hpp"
#include "pic/events.hpp"
#include "pic/init.hpp"
#include "pic/tiling.hpp"
#include "pic/verify.hpp"

namespace picprk::par {

struct DriverConfig {
  pic::InitParams init;
  std::uint32_t steps = 10;
  pic::EventSchedule events;
  double verify_epsilon = pic::kVerifyEpsilon;
  /// When > 0, sample the global load imbalance (max/mean particles per
  /// rank) every this many steps into DriverResult::imbalance_series.
  std::uint32_t sample_every = 0;
  /// Hybrid mode: parallelise each rank's move loop with its own OpenMP
  /// team (the message-passing × threads configuration of the official
  /// PRK's MPI+OpenMP variants). Results are bit-identical.
  bool omp_mover = false;
  /// Fault-tolerance hooks: injector, checkpoint cadence, resume flag.
  /// All defaulted = legacy behaviour at the cost of one branch per step.
  ft::FtOptions ft;
  /// Telemetry hooks (obs subsystem). Both pointers null (the default)
  /// = run dark; with a registry/trace attached the drivers register
  /// their per-rank instruments at setup and record phases per step.
  obs::Hooks obs;
};

struct PhaseBreakdown {
  double compute = 0.0;     ///< force + move
  double exchange = 0.0;    ///< particle routing
  double lb = 0.0;          ///< load-balance decision + migration
  double checkpoint = 0.0;  ///< snapshot pack + store rounds
};

struct DriverResult {
  pic::VerifyResult verification;  ///< merged over all ranks
  std::uint64_t expected_id_checksum = 0;
  bool ok = false;

  std::uint64_t final_particles = 0;
  /// Max particles on any rank at the end of the run — the paper's §V-B
  /// balance metric (62,645 baseline vs 30,585 diffusion vs 25,000 ideal).
  std::uint64_t max_particles_per_rank = 0;
  double ideal_particles_per_rank = 0.0;

  double seconds = 0.0;  ///< wall time of the stepping loop, max over ranks
  PhaseBreakdown phases; ///< per-phase totals, max over ranks

  std::uint64_t particles_exchanged = 0;  ///< global, whole run
  std::uint64_t exchange_bytes = 0;       ///< global, whole run
  std::uint64_t lb_actions = 0;           ///< boundary moves / VP migrations
  std::uint64_t lb_bytes = 0;             ///< mesh + particle bytes moved by LB

  /// Resilience bookkeeping (zero when DriverConfig::ft is inactive).
  std::uint64_t checkpoints = 0;       ///< checkpoint rounds completed
  std::uint64_t checkpoint_bytes = 0;  ///< snapshot bytes packed + shipped, global
  std::uint32_t recoveries = 0;        ///< rollbacks/restarts behind this result
  std::uint32_t localized_recoveries = 0;  ///< in-place buddy restores (no restart)
  std::uint32_t replayed_steps = 0;  ///< max steps any rank re-ran, over all repairs

  /// max/mean particle ratio sampled every `sample_every` steps.
  std::vector<double> imbalance_series;
  /// Full telemetry samples (lambda over particles and compute time)
  /// taken alongside imbalance_series; only populated when
  /// DriverConfig::obs is active. Identical on every rank.
  std::vector<obs::StepSample> step_samples;
};

/// Tracks the expected id checksum through injections and removals.
/// Injected id ranges are globally computable; removed ids are summed
/// locally and reduced at the end.
class EventTracker {
 public:
  EventTracker(const pic::Initializer& init, const pic::EventSchedule& events);

  /// Applies the events scheduled for `step` to this rank's particles
  /// (restricted to its block) and records removed ids.
  void apply(std::uint32_t step, const pic::CellRegion& block,
             std::vector<pic::Particle>& particles);

  /// SoA-store variant: events are rare, so they run on an AoS staging
  /// copy and the store is rebuilt from it — only on steps where
  /// something is actually scheduled (free otherwise). Invalidates a
  /// maintained tile index (population and order change); may be null.
  void apply(std::uint32_t step, const pic::CellRegion& block,
             pic::ParticleSoA& particles, pic::TileIndex* tiles);

  /// Expected global id checksum; collective (one allreduce).
  std::uint64_t finalize(comm::Comm& comm) const;

  /// Serial variant of finalize (no communication).
  std::uint64_t finalize_serial() const { return base_ - local_removed_sum_; }

  /// Checkpoint/restart access to the only mutable tracker state: the
  /// sum of ids this rank has removed so far.
  std::uint64_t removed_sum() const { return local_removed_sum_; }
  void restore_removed_sum(std::uint64_t sum) { local_removed_sum_ = sum; }

 private:
  const pic::Initializer& init_;
  const pic::EventSchedule& events_;
  std::uint64_t base_ = 0;
  std::uint64_t local_removed_sum_ = 0;
};

/// Merges per-rank verification results into the global one (collective).
pic::VerifyResult merge_verification(comm::Comm& comm, const pic::VerifyResult& local);

/// Samples the global imbalance ratio max/mean of per-rank loads
/// (collective; two fused allreduces).
double sample_imbalance(comm::Comm& comm, std::uint64_t local_count);

/// Full telemetry sample: one fused allreduce over {count max, count
/// sum, compute-seconds max, compute-seconds sum}, reduced to lambda =
/// max/mean for both particle counts and measured compute time
/// (collective; identical result on every rank).
obs::StepSample sample_step_telemetry(comm::Comm& comm, int step,
                                      std::uint64_t local_count,
                                      double local_compute_seconds);

/// Reduces per-rank scalar maxima/sums into a DriverResult (collective).
/// `local_*` are this rank's totals; the result is identical on every
/// rank.
void finalize_result(comm::Comm& comm, const DriverConfig& config,
                     const pic::VerifyResult& local_verify, const EventTracker& tracker,
                     std::uint64_t local_particles, double local_seconds,
                     const PhaseBreakdown& local_phases, std::uint64_t local_sent,
                     std::uint64_t local_bytes, std::uint64_t local_lb_actions,
                     std::uint64_t local_lb_bytes, DriverResult& result);

}  // namespace picprk::par
