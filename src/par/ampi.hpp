// The runtime-load-balanced implementation, "ampi" in the paper (§IV-C):
// the same algorithm as the baseline, but over-decomposed into d·P
// virtual processors executed by the vpr runtime, which migrates VPs
// between workers at interval F using a Charm-style balancer. The
// runtime is oblivious of the problem structure — the locality-agnostic
// behaviour whose consequences the paper's Figures 6–7 dissect.
#pragma once

#include <cstdint>
#include <string>

#include "par/driver_common.hpp"

namespace picprk::par {

struct AmpiParams {
  int workers = 2;
  /// Degree of over-decomposition d: vps = d · workers (Figure 5's d).
  int overdecomposition = 4;
  /// Steps between load-balancer invocations (Figure 5's F; 0 = never).
  std::uint32_t lb_interval = 16;
  /// vpr balancer name; the paper's choice is "greedy".
  std::string balancer = "greedy";
  /// Balance on measured per-VP wall time instead of particle counts.
  bool use_measured_load = false;
};

/// Runs the ampi/vpr driver. Standalone (spawns its own workers); not
/// collective over a Comm.
DriverResult run_ampi(const DriverConfig& config, const AmpiParams& params);

}  // namespace picprk::par
