// The runtime-load-balanced implementation, "ampi" in the paper (§IV-C):
// the same algorithm as the baseline, but over-decomposed into d·P
// virtual processors executed by the vpr runtime, which migrates VPs
// between workers at interval F using a Charm-style balancer. The
// runtime is oblivious of the problem structure — the locality-agnostic
// behaviour whose consequences the paper's Figures 6–7 dissect.
#pragma once

#include "par/run_config.hpp"

namespace picprk::par {

/// Runs the ampi/vpr driver on config.workers workers with
/// config.overdecomposition VPs per worker, balancing every
/// config.lb.every steps under the placement strategy named by
/// config.lb.strategy (empty = "greedy", the paper's choice).
/// Standalone (spawns its own workers); not collective over a Comm.
DriverResult run_ampi(const RunConfig& config);

}  // namespace picprk::par
