// One aggregate for everything a parallel run needs — grid, particles,
// distribution, steps, events (all inherited from DriverConfig), plus
// the parallel-shape knobs, the load-balancing strategy selection and
// the resilience plan. tools/picprk.cpp parses the command line into a
// RunConfig exactly once and passes it by const reference to every
// driver; benches and tests construct it directly instead of mirroring
// flag parsing. This retires the per-driver parameter structs
// (DiffusionParams, AmpiParams) and the long positional signatures of
// run_diffusion/run_ampi/run_resilient.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "ft/fault.hpp"
#include "par/driver_common.hpp"

namespace picprk::par {

/// Load-balancing selection, uniform across drivers: the lb registry
/// spec plus the invocation cadence. The strategy-specific knobs
/// (threshold, border, tolerance, hysteresis, ...) travel inside the
/// spec string — `diffusion:threshold=0.2,border=2` — so drivers stay
/// oblivious of them.
struct LbOptions {
  /// lb registry spec, "name[:key=val,...]". Empty = the driver's
  /// canonical default ("diffusion" for the boundary driver, "greedy"
  /// for ampi — the paper's §IV-B/§IV-C pairing).
  std::string strategy;
  /// Steps between LB invocations — the paper's co-tuned F (0 = never).
  std::uint32_t every = 16;
  /// Feed the strategy measured compute seconds instead of particle
  /// counts (the measurement-driven assessment of Rowan et al.).
  bool measured = false;
};

/// How a confirmed rank failure is repaired — the middle and bottom
/// rungs of the retry → localized-recovery → rollback ladder
/// (docs/RESILIENCE.md).
enum class RecoveryMode {
  /// Tear the world down and re-run every rank from the last consistent
  /// checkpoint (the classical global rung; the only one before this
  /// option existed).
  kRollback,
  /// Keep the world alive: the surviving ranks rendezvous in-process,
  /// only the dead rank's state is rebuilt from its buddy copy, and
  /// everyone replays at most one step. Falls back to kRollback when
  /// the rendezvous itself fails. Forces checkpoint_every = 1.
  kLocal,
};

/// Knobs of one resilient run; defaults = no faults, no checkpoints.
/// (Lives here so a RunConfig fully describes a resilient run; the
/// recovery loop itself is par/resilient.hpp.)
struct ResilienceOptions {
  ft::FaultPlan plan;
  /// Checkpoint at the start of every N-th step (0 = never).
  std::uint32_t checkpoint_every = 0;
  /// Per-call blocking-recv deadline in ms (0 = wait forever).
  int timeout_ms = 0;
  /// Deadlock-detector window in ms (0 = off).
  int deadlock_ms = 0;
  /// Give up (rethrow) after this many rollbacks.
  std::uint32_t max_recoveries = 3;
  /// Repair rung for confirmed rank failures.
  RecoveryMode recovery = RecoveryMode::kRollback;
  /// In-band reliable transport (comm/reliable.hpp): message-fault
  /// drops/dups/reorders heal transparently under the mailbox; a
  /// CommTimeout then signals *suspected permanent* failure instead of
  /// a lost packet.
  bool reliable = false;
  /// Retransmit timer of the reliable transport in ms.
  int rto_ms = 20;
  /// Retransmissions per message before the transport abandons it.
  int retransmit_budget = 8;

  bool active() const {
    return !plan.empty() || checkpoint_every > 0 || timeout_ms > 0 ||
           deadlock_ms > 0 || recovery == RecoveryMode::kLocal || reliable;
  }

  /// Loud cross-knob validation, mirroring the lb spec parser: a
  /// nonsensical combination throws std::invalid_argument naming the
  /// knobs instead of silently running a plan that cannot work.
  void validate() const {
    if (recovery == RecoveryMode::kLocal && checkpoint_every == 0) {
      throw std::invalid_argument(
          "resilience: recovery=local requires checkpointing "
          "(checkpoint_every > 0); localized recovery restores the dead "
          "rank from its buddy copy");
    }
    if (reliable && rto_ms <= 0) {
      throw std::invalid_argument(
          "resilience: reliable transport requires rto_ms > 0, got " +
          std::to_string(rto_ms));
    }
    if (reliable && retransmit_budget < 0) {
      throw std::invalid_argument(
          "resilience: retransmit_budget must be >= 0, got " +
          std::to_string(retransmit_budget));
    }
    if (reliable && timeout_ms > 0 && timeout_ms < rto_ms) {
      throw std::invalid_argument(
          "resilience: timeout_ms (" + std::to_string(timeout_ms) +
          ") is shorter than the retransmit interval rto_ms (" +
          std::to_string(rto_ms) +
          ") — every recv would time out before the first retransmission");
    }
  }
};

/// The complete description of one parallel run.
struct RunConfig : DriverConfig {
  /// Which engine executes the run — a par::engine_names() entry
  /// ("serial", "baseline", "diffusion", "ampi", "async"). Resolved by
  /// par::make_engine; drivers themselves never read it.
  std::string impl = "baseline";
  /// threadcomm ranks (baseline/diffusion drivers).
  int ranks = 4;
  /// ampi: worker threads.
  int workers = 2;
  /// ampi: over-decomposition degree d (vps = d · workers, Figure 5).
  int overdecomposition = 4;
  LbOptions lb;
  ResilienceOptions resilience;
};

}  // namespace picprk::par
