// One aggregate for everything a parallel run needs — grid, particles,
// distribution, steps, events (all inherited from DriverConfig), plus
// the parallel-shape knobs, the load-balancing strategy selection and
// the resilience plan. tools/picprk.cpp parses the command line into a
// RunConfig exactly once and passes it by const reference to every
// driver; benches and tests construct it directly instead of mirroring
// flag parsing. This retires the per-driver parameter structs
// (DiffusionParams, AmpiParams) and the long positional signatures of
// run_diffusion/run_ampi/run_resilient.
#pragma once

#include <cstdint>
#include <string>

#include "ft/fault.hpp"
#include "par/driver_common.hpp"

namespace picprk::par {

/// Load-balancing selection, uniform across drivers: the lb registry
/// spec plus the invocation cadence. The strategy-specific knobs
/// (threshold, border, tolerance, hysteresis, ...) travel inside the
/// spec string — `diffusion:threshold=0.2,border=2` — so drivers stay
/// oblivious of them.
struct LbOptions {
  /// lb registry spec, "name[:key=val,...]". Empty = the driver's
  /// canonical default ("diffusion" for the boundary driver, "greedy"
  /// for ampi — the paper's §IV-B/§IV-C pairing).
  std::string strategy;
  /// Steps between LB invocations — the paper's co-tuned F (0 = never).
  std::uint32_t every = 16;
  /// Feed the strategy measured compute seconds instead of particle
  /// counts (the measurement-driven assessment of Rowan et al.).
  bool measured = false;
};

/// Knobs of one resilient run; defaults = no faults, no checkpoints.
/// (Lives here so a RunConfig fully describes a resilient run; the
/// recovery loop itself is par/resilient.hpp.)
struct ResilienceOptions {
  ft::FaultPlan plan;
  /// Checkpoint at the start of every N-th step (0 = never).
  std::uint32_t checkpoint_every = 0;
  /// Per-call blocking-recv deadline in ms (0 = wait forever).
  int timeout_ms = 0;
  /// Deadlock-detector window in ms (0 = off).
  int deadlock_ms = 0;
  /// Give up (rethrow) after this many rollbacks.
  std::uint32_t max_recoveries = 3;

  bool active() const {
    return !plan.empty() || checkpoint_every > 0 || timeout_ms > 0 || deadlock_ms > 0;
  }
};

/// The complete description of one parallel run.
struct RunConfig : DriverConfig {
  /// threadcomm ranks (baseline/diffusion drivers).
  int ranks = 4;
  /// ampi: worker threads.
  int workers = 2;
  /// ampi: over-decomposition degree d (vps = d · workers, Figure 5).
  int overdecomposition = 4;
  LbOptions lb;
  ResilienceOptions resilience;
};

}  // namespace picprk::par
