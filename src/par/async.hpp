// Queue-driven async execution engine (ROADMAP item 1, diy
// `master.hpp` style). The sync drivers are step-synchronous — compute,
// barrier, exchange, barrier — so one straggler rank stalls the world
// every step. This engine removes both barriers: VPs route emigrant
// particles the moment they cross a subdomain boundary, arrivals are
// drained incrementally *while other VPs are still computing*
// (iexchange-style delivery through vpr::StepInbox), and a step
// completes via Mattern four-counter distributed termination detection
// — a (sent, received) token circling the rank ring — instead of a
// collective. Combined with the `steal` placement strategy the engine
// both hides exchange latency behind compute and drains the straggler
// itself; see DESIGN.md "Execution models" for when to pick which loop.
//
// Verification is unchanged: the engine must reproduce the closed-form
// trajectory check and the id checksum bit-for-bit on every
// distribution, which pins the delivery rule (a step-s payload reaches
// VP B only after B's own step-s compute — otherwise B would move the
// arriving particles twice).
#pragma once

#include "comm/comm.hpp"
#include "par/driver_common.hpp"
#include "par/run_config.hpp"

namespace picprk::par {

/// Collective form: every rank of `comm` runs the engine; the returned
/// DriverResult is identical on every rank. `config.lb.strategy` must
/// name a placement-capable strategy (default: "steal").
DriverResult run_async(comm::Comm& comm, const RunConfig& config);

/// Standalone form: builds a threadcomm world with `config.ranks` ranks
/// from config.resilience (recv timeout, deadlock window, reliable
/// transport, message-fault injection) and returns the result. Kill /
/// stall faults and checkpointing belong to the sync drivers' recovery
/// ladder and are rejected with std::invalid_argument.
DriverResult run_async(const RunConfig& config);

}  // namespace picprk::par
