#include "par/engine.hpp"

#include <stdexcept>
#include <utility>

#include "comm/world.hpp"
#include "ft/checkpoint.hpp"
#include "ft/fault.hpp"
#include "obs/registry.hpp"
#include "par/ampi.hpp"
#include "par/async.hpp"
#include "par/baseline.hpp"
#include "par/diffusion.hpp"
#include "pic/simulation.hpp"
#include "util/report.hpp"
#include "util/table.hpp"

namespace picprk::par {

namespace {

/// Copies every counter of a per-instance registry (fault injector,
/// checkpoint store) into the run registry for export.
void absorb_counters(obs::Registry& registry, const obs::Registry& source) {
  for (const auto& view : source.counters()) {
    registry.register_counter(view.name).add(view.value);
  }
}

/// The serial reference kernel behind the Engine interface. Maps the
/// SimulationResult onto the DriverResult fields it populates; the
/// parallel-only fields stay zero and serial's RESULT line keeps its
/// historical base-quartet shape.
class SerialEngine final : public Engine {
 public:
  explicit SerialEngine(RunConfig config)
      : Engine("serial", std::move(config)) {}

  RunReport run() override {
    pic::SimulationConfig cfg;
    cfg.init = config_.init;
    cfg.steps = config_.steps;
    cfg.events = config_.events;
    cfg.verify_epsilon = config_.verify_epsilon;
    const pic::SimulationResult r = pic::run_serial(cfg, config_.omp_mover);

    RunReport report;
    report.impl = name_;
    report.result.verification = r.verification;
    report.result.expected_id_checksum = r.expected_id_checksum;
    report.result.ok = r.ok();
    report.result.final_particles = r.final_particles;
    report.result.seconds = r.seconds;
    return report;
  }
};

/// baseline / diffusion: a threadcomm world per run, optionally wrapped
/// in the run_resilient recovery loop when any resilience knob is set.
class WorldEngine final : public Engine {
 public:
  WorldEngine(std::string name, RunConfig config, DriverFn driver)
      : Engine(std::move(name), std::move(config)), driver_(std::move(driver)) {}

  RunReport run() override {
    RunReport report;
    report.impl = name_;
    if (config_.resilience.active()) {
      report.ft_telemetry = true;
      report.result = run_resilient(config_, driver_, &report.ft);
      // "ft/rollbacks", "ft/localized_recoveries" and "ft/replayed_steps"
      // are registered by run_resilient itself on config_.obs.registry.
      if (obs::Registry* reg = config_.obs.registry) {
        reg->register_counter("ft/dropped").add(report.ft.dropped);
        reg->register_counter("ft/duplicated").add(report.ft.duplicated);
        reg->register_counter("ft/delayed").add(report.ft.delayed);
        reg->register_counter("ft/kills").add(report.ft.kills);
        reg->register_counter("ft/stalls").add(report.ft.stalls);
        reg->register_counter("ft/checkpoint_saves").add(report.ft.checkpoint_saves);
        reg->register_counter("ft/residual_messages").add(report.ft.residual_messages);
        reg->register_counter("ft/retransmits").add(report.ft.retransmits);
        reg->register_counter("ft/dup_dropped").add(report.ft.dup_dropped);
        reg->register_counter("ft/abandoned").add(report.ft.abandoned);
      }
    } else {
      comm::World world(config_.ranks);
      world.run([&](comm::Comm& comm) {
        DriverResult r = driver_(comm, config_);
        if (comm.rank() == 0) report.result = r;
      });
    }
    absorb(report.result);
    return report;
  }

 private:
  DriverFn driver_;
};

/// ampi/vpr: no World, so the fault injector and checkpoint store are
/// installed as in-process hooks; the driver recovers by rewinding and
/// pup_unpack-ing. Their metrics registries are folded into the run
/// registry after the fact.
class AmpiEngine final : public Engine {
 public:
  explicit AmpiEngine(RunConfig config) : Engine("ampi", std::move(config)) {}

  RunReport run() override {
    ft::FaultInjector injector(config_.resilience.plan);
    ft::CheckpointStore store;
    RunConfig cfg = config_;
    const bool resilient = cfg.resilience.active();
    if (resilient) {
      cfg.ft.injector = cfg.resilience.plan.empty() ? nullptr : &injector;
      cfg.ft.store = cfg.resilience.checkpoint_every > 0 ? &store : nullptr;
      cfg.ft.checkpoint_every = cfg.resilience.checkpoint_every;
    }
    RunReport report;
    report.impl = name_;
    report.result = run_ampi(cfg);
    absorb(report.result);
    if (obs::Registry* reg = config_.obs.registry; reg != nullptr && resilient) {
      absorb_counters(*reg, injector.metrics());
      absorb_counters(*reg, store.metrics());
    }
    return report;
  }
};

/// The queue-driven engine (par/async.hpp). Message faults and the
/// reliable transport are wired inside run_async itself; kill/stall
/// plans and checkpointing are rejected there with invalid_argument.
class AsyncEngine final : public Engine {
 public:
  explicit AsyncEngine(RunConfig config) : Engine("async", std::move(config)) {}

  RunReport run() override {
    RunReport report;
    report.impl = name_;
    report.result = run_async(config_);
    absorb(report.result);
    return report;
  }
};

}  // namespace

Engine::Engine(std::string name, RunConfig config)
    : name_(std::move(name)), config_(std::move(config)) {}

void Engine::absorb(const DriverResult& r) const {
  obs::Registry* registry = config_.obs.registry;
  if (registry == nullptr) return;
  registry->register_gauge("run/seconds").set(r.seconds);
  registry->register_gauge("run/final_particles")
      .set(static_cast<double>(r.final_particles));
  registry->register_gauge("run/max_particles_per_rank")
      .set(static_cast<double>(r.max_particles_per_rank));
  registry->register_gauge("run/phase_compute_seconds").set(r.phases.compute);
  registry->register_gauge("run/phase_exchange_seconds").set(r.phases.exchange);
  registry->register_gauge("run/phase_lb_seconds").set(r.phases.lb);
  registry->register_gauge("run/phase_checkpoint_seconds").set(r.phases.checkpoint);
  registry->register_counter("run/particles_exchanged").add(r.particles_exchanged);
  registry->register_counter("run/exchange_bytes").add(r.exchange_bytes);
  registry->register_counter("run/lb_actions").add(r.lb_actions);
  registry->register_counter("run/checkpoints").add(r.checkpoints);
  registry->register_counter("run/recoveries").add(r.recoveries);
}

std::string RunReport::human_summary() const {
  std::string extra;
  if (impl == "serial") {
    extra = "max err " +
            util::Table::fmt(result.verification.max_position_error, 9);
  } else if (impl == "ampi") {
    extra = std::to_string(result.lb_actions) + " migrations, max/worker " +
            std::to_string(result.max_particles_per_rank);
  } else {
    extra = std::to_string(result.particles_exchanged) +
            " exchanged, max/rank " +
            std::to_string(result.max_particles_per_rank);
  }
  std::string line = impl;
  line += ": ";
  line += result.ok ? "VERIFIED" : "VERIFICATION FAILED";
  line += " — " + std::to_string(result.final_particles) + " particles, " +
          util::Table::fmt(result.seconds, 3) + " s";
  if (!extra.empty()) line += " (" + extra + ')';
  return line;
}

std::string RunReport::result_line() const {
  util::ResultLine line(impl);
  line.add("status", result.ok ? "pass" : "fail")
      .add("particles", result.final_particles)
      .add("seconds", result.seconds);
  if (impl != "serial") {
    line.add("checksum", result.verification.id_checksum)
        .add("expected", result.expected_id_checksum)
        .add("exchanged", result.particles_exchanged)
        .add("checkpoints", result.checkpoints)
        .add("checkpoint_bytes", result.checkpoint_bytes)
        .add("recoveries", static_cast<std::uint64_t>(result.recoveries))
        .add("localized", static_cast<std::uint64_t>(result.localized_recoveries))
        .add("replayed", static_cast<std::uint64_t>(result.replayed_steps));
  }
  if (ft_telemetry) {
    line.add("rollbacks", static_cast<std::uint64_t>(ft.rollbacks))
        .add("retransmits", ft.retransmits)
        .add("dup_dropped", ft.dup_dropped);
  }
  return line.str();
}

const std::vector<std::string>& engine_names() {
  static const std::vector<std::string> names = {"serial", "baseline",
                                                 "diffusion", "ampi", "async"};
  return names;
}

std::unique_ptr<Engine> make_engine(RunConfig config) {
  config.resilience.validate();  // loud cross-knob rejection up front
  const std::string impl = config.impl;
  if (impl == "serial") return std::make_unique<SerialEngine>(std::move(config));
  if (impl == "baseline" || impl == "diffusion") {
    DriverFn driver = impl == "baseline"
                          ? DriverFn(&run_baseline)
                          : DriverFn(&run_diffusion);
    return std::make_unique<WorldEngine>(impl, std::move(config),
                                         std::move(driver));
  }
  if (impl == "ampi") return std::make_unique<AmpiEngine>(std::move(config));
  if (impl == "async") return std::make_unique<AsyncEngine>(std::move(config));
  std::string known;
  for (const std::string& name : engine_names()) {
    if (!known.empty()) known += " | ";
    known += name;
  }
  throw std::invalid_argument("unknown impl: " + impl + " (" + known + ')');
}

}  // namespace picprk::par
