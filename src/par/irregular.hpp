// The §IV-B *alternative* load-balancing scheme the paper describes and
// rejects: "have each processor exchange workload information locally
// with its eight nearest neighbors and independently perform subgrid/
// particle exchanges. While this approach is more flexible, the
// resulting subdomains can have non-rectangular shapes after a few load
// balancing steps, which in turn means that extra book-keeping
// information is required regarding the adjacency of the subdomains.
// Additionally, the communication pattern becomes more irregular."
//
// We implement it so the drawback can be *measured*: ownership is a
// per-cell map (the "extra book-keeping"), LB trades border cells with
// whichever adjacent owner is lighter, and the driver reports the
// subdomain perimeter — the quantity whose growth under this scheme
// motivated the paper's two-phase rectangular design.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "comm/cart.hpp"
#include "par/driver_common.hpp"

namespace picprk::par {

/// Per-cell ownership map, replicated on every rank and mutated by the
/// same deterministic decisions everywhere (like the boundary vectors of
/// the rectangular scheme, just bigger).
class CellOwnerMap {
 public:
  /// Initialises to the balanced rectangular decomposition.
  CellOwnerMap(const pic::GridSpec& grid, const comm::Cart2D& cart);

  int owner(std::int64_t cx, std::int64_t cy) const {
    return map_[index(cx, cy)];
  }
  void set_owner(std::int64_t cx, std::int64_t cy, int rank) {
    map_[index(cx, cy)] = rank;
  }

  std::int64_t cells() const { return cells_; }
  int ranks() const { return ranks_; }

  /// Number of cells owned by `rank`.
  std::int64_t count_owned(int rank) const;

  /// Total perimeter of rank subdomains: cell edges whose two sides have
  /// different owners (periodic). The fragmentation metric.
  std::int64_t total_perimeter() const;

  /// Border cells of `rank`: owned cells with at least one 4-neighbor
  /// owned by someone else.
  std::vector<std::pair<std::int64_t, std::int64_t>> border_cells(int rank) const;

 private:
  std::size_t index(std::int64_t cx, std::int64_t cy) const;

  std::int64_t cells_;
  int ranks_;
  std::vector<int> map_;
};

struct IrregularParams {
  std::uint32_t frequency = 16;  ///< steps between LB passes
  double threshold = 0.10;       ///< relative load difference that triggers a trade
  /// Max border cells a rank donates to one neighbor per LB pass.
  std::int64_t quota = 8;
};

/// One deterministic LB pass over the map: every rank's border cells may
/// be reassigned to an adjacent (8-neighborhood) owner whose load is
/// lower by more than threshold·avg; per-cell particle counts are
/// estimated as the donor's average. Pure function of (map, loads):
/// every rank computes the identical new map. Exposed for tests.
/// Returns the number of cells reassigned.
std::int64_t irregular_lb_pass(CellOwnerMap& map, const std::vector<double>& rank_loads,
                               const IrregularParams& params);

/// Extra fields reported by the irregular driver.
struct IrregularResult {
  DriverResult driver;
  std::int64_t initial_perimeter = 0;
  std::int64_t final_perimeter = 0;  ///< fragmentation after the run
};

/// Runs the irregular-ownership driver; collective over `comm`.
IrregularResult run_irregular(comm::Comm& comm, const DriverConfig& config,
                              const IrregularParams& params);

}  // namespace picprk::par
