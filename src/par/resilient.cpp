#include "par/resilient.hpp"

#include <utility>

#include "comm/comm.hpp"
#include "comm/world.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace picprk::par {

void DriverSnapshot::pup(vpr::Pup& p) {
  p(step);
  p(x_bounds);
  p(y_bounds);
  p(particles);
  p(removed_sum);
  p(sent);
  p(bytes);
  p(lb_actions);
  p(lb_bytes);
}

std::uint64_t checkpoint_exchange(comm::Comm& comm, ft::CheckpointStore& store,
                                  DriverSnapshot& snap) {
  std::vector<std::byte> packed = vpr::pup_pack(snap);
  const std::uint64_t size = packed.size();
  if (comm.size() == 1) {
    store.save(comm.rank(), snap.step, std::move(packed));
    return size;
  }
  const int buddy = (comm.rank() + 1) % comm.size();
  const int prev = (comm.rank() + comm.size() - 1) % comm.size();
  // Ship first (buffered send never blocks), then keep the primary.
  comm.send(std::span<const std::byte>(packed), buddy, kCheckpointTag);
  store.save(comm.rank(), snap.step, std::move(packed));
  // Receive prev's snapshot and hold it as prev's buddy copy. All ranks
  // checkpoint the same step, so the incoming copy is tagged snap.step.
  std::vector<std::byte> incoming = comm.recv<std::byte>(prev, kCheckpointTag);
  store.save_buddy(prev, snap.step, std::move(incoming));
  return 2 * size;  // packed locally + shipped to the buddy
}

std::optional<DriverSnapshot> restore_snapshot(int rank, int slots,
                                               const ft::CheckpointStore& store) {
  const std::optional<std::uint32_t> step = store.consistent_step(slots);
  if (!step) return std::nullopt;
  std::optional<std::vector<std::byte>> bytes = store.load(rank, *step);
  if (!bytes) return std::nullopt;
  DriverSnapshot snap;
  vpr::pup_unpack(snap, std::move(*bytes));
  PICPRK_ASSERT_MSG(snap.step == *step, "checkpoint snapshot tagged with wrong step");
  return snap;
}

DriverResult run_resilient(const RunConfig& config, const DriverFn& driver,
                           ResilienceTelemetry* telemetry) {
  const int ranks = config.ranks;
  const ResilienceOptions& options = config.resilience;
  PICPRK_EXPECTS(ranks >= 1);

  ft::FaultInjector injector(options.plan);
  ft::CheckpointStore store;

  comm::WorldOptions world_options;
  world_options.timeout_ms = options.timeout_ms;
  world_options.deadlock_ms = options.deadlock_ms;
  world_options.fault_hook = options.plan.empty() ? nullptr : &injector;
  comm::World world(ranks, world_options);

  RunConfig cfg = config;
  cfg.ft.injector = options.plan.empty() ? nullptr : &injector;
  cfg.ft.store = options.checkpoint_every > 0 ? &store : nullptr;
  cfg.ft.checkpoint_every = options.checkpoint_every;
  cfg.ft.resume = false;

  std::uint32_t recoveries = 0;
  std::uint64_t residual = 0;
  std::vector<std::string> failures;

  const auto can_recover = [&] {
    return cfg.ft.checkpointing() && recoveries < options.max_recoveries &&
           store.consistent_step(ranks).has_value();
  };
  const auto note_failure = [&](const char* kind, const std::exception& e) {
    failures.emplace_back(std::string(kind) + ": " + e.what());
    PICPRK_WARN("resilient run failed (" << kind << "): " << e.what()
                                         << (can_recover() ? " -- rolling back"
                                                           : " -- not recoverable"));
  };

  DriverResult result;
  for (;;) {
    try {
      world.run([&](comm::Comm& comm) {
        DriverResult local = driver(comm, cfg);
        // Results are identical on every rank; rank 0 publishes.
        if (comm.rank() == 0) result = std::move(local);
      });
      break;
    } catch (const ft::RankKilled& e) {
      // The dead rank's memory is gone: only buddy copies of its
      // snapshots survive into the recovery attempt.
      store.drop_primary(e.rank());
      note_failure("rank-killed", e);
      if (!can_recover()) throw;
    } catch (const comm::CommTimeout& e) {
      note_failure("comm-timeout", e);
      if (!can_recover()) throw;
    } catch (const comm::DeadlockDetected& e) {
      note_failure("deadlock", e);
      if (!can_recover()) throw;
    }
    // A clean rerun resets the world's counter: record the drain now.
    residual += world.residual_messages();
    ++recoveries;
    cfg.ft.resume = true;
  }

  result.recoveries = recoveries;
  if (telemetry) {
    telemetry->recoveries = recoveries;
    telemetry->trace = injector.trace();
    telemetry->dropped = injector.dropped();
    telemetry->duplicated = injector.duplicated();
    telemetry->delayed = injector.delayed();
    telemetry->kills = injector.kills();
    telemetry->stalls = injector.stalls();
    telemetry->checkpoint_saves = store.saves();
    telemetry->residual_messages = residual;
    telemetry->failures = std::move(failures);
  }
  return result;
}

}  // namespace picprk::par
