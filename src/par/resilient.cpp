#include "par/resilient.hpp"

#include <algorithm>
#include <utility>

#include "comm/comm.hpp"
#include "comm/world.hpp"
#include "ft/coordinator.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace picprk::par {

void DriverSnapshot::pup(vpr::Pup& p) {
  p(step);
  p(x_bounds);
  p(y_bounds);
  p(particles);
  p(removed_sum);
  p(sent);
  p(bytes);
  p(lb_actions);
  p(lb_bytes);
  p(samples);
}

std::uint64_t checkpoint_exchange(comm::Comm& comm, ft::CheckpointStore& store,
                                  DriverSnapshot& snap) {
  std::vector<std::byte> packed = vpr::pup_pack(snap);
  const std::uint64_t size = packed.size();
  if (comm.size() == 1) {
    store.save(comm.rank(), snap.step, std::move(packed));
    return size;
  }
  const int buddy = (comm.rank() + 1) % comm.size();
  const int prev = (comm.rank() + comm.size() - 1) % comm.size();
  // Ship first (buffered send never blocks), then keep the primary.
  comm.send(std::span<const std::byte>(packed), buddy, kCheckpointTag);
  store.save(comm.rank(), snap.step, std::move(packed));
  // Receive prev's snapshot and hold it as prev's buddy copy. All ranks
  // checkpoint the same step, so the incoming copy is tagged snap.step.
  std::vector<std::byte> incoming = comm.recv<std::byte>(prev, kCheckpointTag);
  store.save_buddy(prev, snap.step, std::move(incoming));
  return 2 * size;  // packed locally + shipped to the buddy
}

std::optional<DriverSnapshot> restore_snapshot(int rank, int slots,
                                               const ft::CheckpointStore& store) {
  const std::optional<std::uint32_t> step = store.consistent_step(slots);
  if (!step) return std::nullopt;
  std::optional<std::vector<std::byte>> bytes = store.load(rank, *step);
  if (!bytes) return std::nullopt;
  DriverSnapshot snap;
  vpr::pup_unpack(snap, std::move(*bytes));
  PICPRK_ASSERT_MSG(snap.step == *step, "checkpoint snapshot tagged with wrong step");
  return snap;
}

DriverResult run_resilient(const RunConfig& config, const DriverFn& driver,
                           ResilienceTelemetry* telemetry) {
  const int ranks = config.ranks;
  const ResilienceOptions& options = config.resilience;
  PICPRK_EXPECTS(ranks >= 1);
  options.validate();
  const bool local_mode = options.recovery == RecoveryMode::kLocal;

  ft::FaultInjector injector(options.plan);
  ft::CheckpointStore store;

  comm::WorldOptions world_options;
  world_options.timeout_ms = options.timeout_ms;
  world_options.deadlock_ms = options.deadlock_ms;
  world_options.fault_hook = options.plan.empty() ? nullptr : &injector;
  world_options.reliable.enabled = options.reliable;
  world_options.reliable.rto_ms = options.rto_ms;
  world_options.reliable.max_retransmits = options.retransmit_budget;
  comm::World world(ranks, world_options);

  // Localized recovery needs every step checkpointed so the surviving
  // ranks replay at most one step (validated above: cadence > 0).
  std::optional<ft::RecoveryCoordinator> coordinator;
  if (local_mode) {
    coordinator.emplace(&store, ranks,
                        options.timeout_ms > 0 ? options.timeout_ms : 10000);
  }

  RunConfig cfg = config;
  cfg.ft.injector = options.plan.empty() ? nullptr : &injector;
  cfg.ft.store = options.checkpoint_every > 0 ? &store : nullptr;
  cfg.ft.checkpoint_every = local_mode ? 1 : options.checkpoint_every;
  cfg.ft.coordinator = coordinator ? &*coordinator : nullptr;
  cfg.ft.resume = false;

  std::uint32_t rollbacks = 0;
  std::uint64_t residual = 0;
  std::vector<std::string> failures;

  const auto can_recover = [&] {
    return cfg.ft.checkpointing() && rollbacks < options.max_recoveries &&
           store.consistent_step(ranks).has_value();
  };
  const auto note_failure = [&](const char* kind, const std::exception& e) {
    failures.emplace_back(std::string(kind) + ": " + e.what());
    PICPRK_WARN("resilient run failed (" << kind << "): " << e.what()
                                         << (can_recover() ? " -- rolling back"
                                                           : " -- not recoverable"));
  };

  // Per-process obs mirrors of the ladder's outcome counters — the
  // instrument the acceptance criteria read ("zero rollbacks").
  obs::Counter* rollback_counter = nullptr;
  obs::Counter* localized_counter = nullptr;
  obs::Counter* replayed_counter = nullptr;
  if (cfg.obs.registry != nullptr) {
    rollback_counter = &cfg.obs.registry->register_counter("ft/rollbacks");
    localized_counter = &cfg.obs.registry->register_counter("ft/localized_recoveries");
    replayed_counter = &cfg.obs.registry->register_counter("ft/replayed_steps");
  }

  DriverResult result;
  for (;;) {
    try {
      if (coordinator) {
        coordinator->attach(&world.state());
        coordinator->begin_run();
      }
      world.run([&](comm::Comm& comm) {
        DriverResult local = driver(comm, cfg);
        // Results are identical on every rank; rank 0 publishes.
        if (comm.rank() == 0) result = std::move(local);
      });
      break;
    } catch (const ft::RankKilled& e) {
      // The dead rank's memory is gone: only buddy copies of its
      // snapshots survive into the recovery attempt. (Under localized
      // recovery the drivers catch RankKilled in-process; reaching this
      // handler means the rendezvous path itself gave up.)
      store.drop_primary(e.rank());
      note_failure("rank-killed", e);
      if (!can_recover()) throw;
    } catch (const ft::RecoveryFailed& e) {
      // The localized rung failed (rendezvous timeout, or no consistent
      // line) — fall down to the rollback rung. declare_dead() already
      // dropped the victim's primary copies.
      note_failure("recovery-failed", e);
      if (!can_recover()) throw;
    } catch (const comm::CommTimeout& e) {
      note_failure("comm-timeout", e);
      if (!can_recover()) throw;
    } catch (const comm::DeadlockDetected& e) {
      note_failure("deadlock", e);
      if (!can_recover()) throw;
    }
    // A clean rerun resets the world's counter: record the drain now.
    residual += world.residual_messages();
    ++rollbacks;
    if (rollback_counter != nullptr) rollback_counter->add();
    cfg.ft.resume = true;
  }

  const std::uint32_t localized =
      std::max(result.localized_recoveries,
               coordinator ? coordinator->recoveries() : 0u);
  result.localized_recoveries = localized;
  result.recoveries = rollbacks + localized;
  if (localized_counter != nullptr && localized > 0) localized_counter->add(localized);
  if (replayed_counter != nullptr && result.replayed_steps > 0) {
    replayed_counter->add(result.replayed_steps);
  }
  if (telemetry) {
    telemetry->recoveries = result.recoveries;
    telemetry->rollbacks = rollbacks;
    telemetry->localized_recoveries = localized;
    telemetry->replayed_steps = result.replayed_steps;
    telemetry->trace = injector.trace();
    telemetry->dropped = injector.dropped();
    telemetry->duplicated = injector.duplicated();
    telemetry->delayed = injector.delayed();
    telemetry->kills = injector.kills();
    telemetry->stalls = injector.stalls();
    telemetry->checkpoint_saves = store.saves();
    telemetry->residual_messages = residual + world.residual_messages();
    telemetry->residual_duplicates = world.residual_duplicates();
    if (coordinator) telemetry->drained_messages = coordinator->drained_messages();
    const comm::TransportStats ts = world.transport_stats();
    telemetry->retransmits = ts.retransmits;
    telemetry->dup_dropped = ts.dup_dropped;
    telemetry->reordered = ts.reordered;
    telemetry->abandoned = ts.abandoned;
    telemetry->failures = std::move(failures);
  }
  return result;
}

}  // namespace picprk::par
