#include "par/async.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "comm/mailbox.hpp"
#include "comm/world.hpp"
#include "ft/fault.hpp"
#include "lb/registry.hpp"
#include "obs/phase.hpp"
#include "par/pic_vp.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"
#include "vpr/inbox.hpp"
#include "vpr/pup.hpp"

namespace picprk::par {

namespace {

/// Wire prefix of every kAsyncParticlesTag payload; AoS particle
/// records follow. The step stamp drives the delivery-eligibility rule.
struct WireHeader {
  std::int32_t src_vp = 0;
  std::int32_t dst_vp = 0;
  std::uint32_t step = 0;
};
static_assert(std::is_trivially_copyable_v<WireHeader>);

/// Prefix of a kAsyncMigrateTag payload; the PUP-packed VP follows.
struct MigrateHeader {
  std::int32_t vp = 0;
  std::uint32_t step = 0;
};
static_assert(std::is_trivially_copyable_v<MigrateHeader>);

/// Mattern's circulating token: global (sent, received) accumulators
/// for one step's particle messages. The step stamp matters: rank 0 can
/// finish step s, compute s+1 and launch the s+1 token while a slow
/// rank is still draining step s — that rank must park the early token
/// until its own s+1 counters exist, not fold stale counts into it.
struct Token {
  std::uint32_t step = 0;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  bool balanced_as(const Token& prev) const {
    return sent == received && sent == prev.sent && received == prev.received;
  }
};
static_assert(std::is_trivially_copyable_v<Token>);

class AsyncEngine final : public vpr::VpContext {
 public:
  AsyncEngine(comm::Comm& comm, const RunConfig& config)
      : comm_(comm),
        config_(config),
        rank_(comm.rank()),
        vp_count_(config.ranks * config.overdecomposition),
        shared_(std::make_shared<const PicVpShared>(config, vp_count_)) {
    PICPRK_EXPECTS(comm.size() == config.ranks);
    PICPRK_EXPECTS(config.overdecomposition >= 1);
    owner_.resize(static_cast<std::size_t>(vp_count_));
    vps_.resize(static_cast<std::size_t>(vp_count_));
    inbox_.resize(static_cast<std::size_t>(vp_count_));
    stepped_.assign(static_cast<std::size_t>(vp_count_), 0);
    vp_seconds_.assign(static_cast<std::size_t>(vp_count_), 0.0);
    for (int v = 0; v < vp_count_; ++v) {
      owner_[static_cast<std::size_t>(v)] =
          comm::block_owner(vp_count_, config.ranks, v);
      if (owner_[static_cast<std::size_t>(v)] == rank_) {
        auto vp = std::make_unique<PicVp>(v, shared_);
        vp->populate();
        vps_[static_cast<std::size_t>(v)] = std::move(vp);
      }
    }
    const std::string spec =
        config.lb.strategy.empty() ? std::string("steal") : config.lb.strategy;
    balancer_ = lb::make_strategy(spec);
    if (!balancer_->balances_placement()) {
      throw std::invalid_argument("async: strategy '" + balancer_->name() +
                                  "' has no placement capability; pick e.g. "
                                  "steal, greedy, diffusion, rcb or compact");
    }
  }

  DriverResult run();

  // ------------------------------------------------------- VpContext
  void send(int dst_vp, std::vector<std::byte> payload) override {
    PICPRK_EXPECTS(dst_vp >= 0 && dst_vp < vp_count_);
    exchange_bytes_ += payload.size();
    const int dst_rank = owner_[static_cast<std::size_t>(dst_vp)];
    if (dst_rank == rank_) {
      if (stepped_[static_cast<std::size_t>(dst_vp)] != 0) {
        vps_[static_cast<std::size_t>(dst_vp)]->deliver(current_vp_,
                                                        std::move(payload));
      } else {
        inbox_[static_cast<std::size_t>(dst_vp)].hold(step_, current_vp_,
                                                      std::move(payload));
      }
      return;
    }
    std::vector<std::byte> wire(sizeof(WireHeader) + payload.size());
    const WireHeader h{current_vp_, dst_vp, step_};
    std::memcpy(wire.data(), &h, sizeof h);
    if (!payload.empty()) {
      std::memcpy(wire.data() + sizeof h, payload.data(), payload.size());
    }
    comm_.send_buffer(std::move(wire), dst_rank, comm::kAsyncParticlesTag);
    ++sent_cur_;
  }
  std::uint32_t step() const override { return step_; }
  int vps() const override { return vp_count_; }

 private:
  /// Drains every queued particle payload without blocking; early
  /// (next-step) arrivals are parked in the destination's inbox.
  /// Returns the number of messages taken off the wire.
  std::size_t poll_incoming(bool during_compute) {
    std::size_t got = 0;
    while (auto wire =
               comm_.try_recv_buffer(comm::kAnySource, comm::kAsyncParticlesTag)) {
      WireHeader h;
      PICPRK_ASSERT_MSG(wire->size() >= sizeof h, "async: short particle payload");
      std::memcpy(&h, wire->data(), sizeof h);
      PICPRK_ASSERT_MSG(h.dst_vp >= 0 && h.dst_vp < vp_count_ &&
                            owner_[static_cast<std::size_t>(h.dst_vp)] == rank_,
                        "async: payload routed to a VP this rank does not own");
      if (h.step == step_) {
        ++recv_cur_;
      } else {
        // A sender can be at most one step ahead: it needed this rank's
        // token contribution to finish step_, and step_+2 would need a
        // second termination this rank has not joined.
        PICPRK_ASSERT_MSG(h.step == step_ + 1, "async: payload from the far future");
        ++recv_next_;
      }
      std::vector<std::byte> payload(wire->begin() + sizeof h, wire->end());
      auto& vp = vps_[static_cast<std::size_t>(h.dst_vp)];
      if (h.step == step_ && stepped_[static_cast<std::size_t>(h.dst_vp)] != 0) {
        vp->deliver(h.src_vp, std::move(payload));
      } else {
        inbox_[static_cast<std::size_t>(h.dst_vp)].hold(h.step, h.src_vp,
                                                        std::move(payload));
      }
      ++got;
    }
    if (got > 0) {
      if (during_compute && overlap_deliveries_ != nullptr) {
        overlap_deliveries_->add(got);
      } else if (!during_compute && drain_deliveries_ != nullptr) {
        drain_deliveries_->add(got);
      }
    }
    return got;
  }

  /// Blocks (politely: poll + yield/sleep backoff) until the Mattern
  /// token proves every step_`-stamped particle message has been
  /// received — the step boundary, without a collective.
  void drain_until_terminated() {
    const int p = comm_.size();
    if (p == 1) return;  // nothing remote can be in flight
    const auto deadline = std::chrono::milliseconds(config_.resilience.timeout_ms);
    auto last_progress = std::chrono::steady_clock::now();
    int idle_polls = 0;
    Token prev{step_, ~0ull, ~0ull};
    bool terminated = false;
    const auto forward = [&](Token t) {
      PICPRK_ASSERT_MSG(t.step == step_, "async: forwarding a stale token");
      t.sent += sent_cur_;
      t.received += recv_cur_;
      comm_.send_value(t, (rank_ + 1) % p, comm::kAsyncTokenTag);
      if (token_rounds_ != nullptr && rank_ == 0) token_rounds_->add(1);
    };
    if (rank_ == 0) {
      forward(Token{step_});
    } else if (pending_token_ && pending_token_->step == step_) {
      // The token that arrived early, while this rank was still
      // draining the previous step; our counters exist now.
      forward(*pending_token_);
      pending_token_.reset();
    }
    while (!terminated) {
      bool progress = poll_incoming(/*during_compute=*/false) > 0;
      if (rank_ == 0) {
        if (auto tok = comm_.try_recv_value<Token>(p - 1, comm::kAsyncTokenTag)) {
          progress = true;
          PICPRK_ASSERT_MSG(tok->step == step_, "async: token returned for a "
                                                "different step");
          if (tok->balanced_as(prev)) {
            // Two consecutive identical balanced rounds: globally quiet.
            for (int r = 1; r < p; ++r) {
              comm_.send_value(step_, r, comm::kAsyncTermTag);
            }
            terminated = true;
          } else {
            prev = *tok;
            forward(Token{step_});
          }
        }
      } else {
        if (auto tok = comm_.try_recv_value<Token>(rank_ - 1, comm::kAsyncTokenTag)) {
          progress = true;
          if (tok->step == step_) {
            forward(*tok);
          } else {
            // The ring ahead of us is already terminating the next step.
            PICPRK_ASSERT_MSG(tok->step == step_ + 1 && !pending_token_,
                              "async: token from the far future");
            pending_token_ = *tok;
          }
        }
        if (auto term = comm_.try_recv_value<std::uint32_t>(0, comm::kAsyncTermTag)) {
          PICPRK_ASSERT_MSG(*term == step_, "async: termination for a different step");
          terminated = true;
          progress = true;  // skip the idle wait below: we are done
        }
      }
      if (progress) {
        last_progress = std::chrono::steady_clock::now();
        idle_polls = 0;
        continue;
      }
      if (comm_.transport_retry_pending()) {
        // In-band retries still running: re-arm the deadline so the
        // timeout only fires once the retransmit budget is exhausted,
        // mirroring the blocking recv path.
        last_progress = std::chrono::steady_clock::now();
      } else if (deadline.count() > 0 &&
                 std::chrono::steady_clock::now() - last_progress > deadline) {
        throw comm::CommTimeout(
            "async drain: no progress within " + std::to_string(deadline.count()) +
                " ms waiting for step " + std::to_string(step_) + " to terminate",
            0, comm::kAnySource, comm::kAsyncParticlesTag);
      }
      // Nothing ready: block on the mailbox until any envelope arrives
      // instead of yield-spinning. On oversubscribed hosts the spin
      // burns the scheduler quantum the *sender* needs, turning every
      // token hop into a scheduling round-trip; the condvar wait wakes
      // this rank the moment something lands. The probe honors the
      // world deadline and re-arms it while transport retries are in
      // flight, so fault scenarios still surface CommTimeout.
      const comm::Status st = comm_.probe(comm::kAnySource, comm::kAnyTag);
      if (st.tag != comm::kAsyncParticlesTag && st.tag != comm::kAsyncTokenTag &&
          st.tag != comm::kAsyncTermTag) {
        // A rank that already terminated has moved on to a collective
        // (rebalance, sampling); its envelope is not ours to consume
        // and will keep matching the probe. Back off politely until
        // our own TERM arrives.
        if (++idle_polls > 64) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        } else {
          std::this_thread::yield();
        }
      }
    }
  }

  /// Quiet-point load balancing: allgathered per-VP loads feed the pure
  /// strategy, every rank evaluates the identical plan, and reassigned
  /// VPs ship their PUP state to the new owner.
  void rebalance() {
    std::vector<double> loads(static_cast<std::size_t>(vp_count_), 0.0);
    for (int v = 0; v < vp_count_; ++v) {
      if (owner_[static_cast<std::size_t>(v)] != rank_) continue;
      loads[static_cast<std::size_t>(v)] =
          config_.lb.measured ? vp_seconds_[static_cast<std::size_t>(v)]
                              : vps_[static_cast<std::size_t>(v)]->load();
    }
    loads = comm_.allreduce(std::span<const double>(loads), std::plus<>{});

    lb::PlacementInput input;
    input.metric = config_.lb.measured ? lb::LoadMetric::kComputeSeconds
                                       : lb::LoadMetric::kParticles;
    input.step = step_;
    input.interval_steps = config_.lb.every;
    input.workers = comm_.size();
    input.parts.resize(static_cast<std::size_t>(vp_count_));
    for (int v = 0; v < vp_count_; ++v) {
      auto& part = input.parts[static_cast<std::size_t>(v)];
      part.part = v;
      part.load = loads[static_cast<std::size_t>(v)];
      part.owner = owner_[static_cast<std::size_t>(v)];
      part.neighbors = {shared_->vcart.neighbor(v, 1, 0),
                        shared_->vcart.neighbor(v, -1, 0),
                        shared_->vcart.neighbor(v, 0, 1),
                        shared_->vcart.neighbor(v, 0, -1)};
    }
    util::Timer event_timer;
    const std::vector<int> plan = balancer_->rebalance_placement(input);
    PICPRK_ASSERT_MSG(plan.size() == input.parts.size(),
                      "async: balancer returned a wrong-size plan");
    if (lb_decisions_ != nullptr) lb_decisions_->add(1);
    bool changed = false;

    // Ship outgoing VPs (ascending id; FIFO per (source,tag) lets the
    // receiver recv in the same deterministic order), then collect
    // incoming ones. The world is quiet, so blocking recvs are safe.
    double moved_load = 0.0;
    std::uint64_t event_bytes = 0;
    for (int v = 0; v < vp_count_; ++v) {
      const int from = owner_[static_cast<std::size_t>(v)];
      const int to = plan[static_cast<std::size_t>(v)];
      PICPRK_ASSERT_MSG(to >= 0 && to < comm_.size(),
                        "async: balancer mapped a VP to an invalid rank");
      if (to == from) continue;
      changed = true;
      if (from != rank_) continue;
      auto& vp = vps_[static_cast<std::size_t>(v)];
      PICPRK_ASSERT_MSG(inbox_[static_cast<std::size_t>(v)].empty(),
                        "async: migrating a VP with parked deliveries");
      std::vector<std::byte> packed = vpr::pup_pack(*vp);
      std::vector<std::byte> wire(sizeof(MigrateHeader) + packed.size());
      const MigrateHeader h{v, step_};
      std::memcpy(wire.data(), &h, sizeof h);
      std::memcpy(wire.data() + sizeof h, packed.data(), packed.size());
      moved_load += loads[static_cast<std::size_t>(v)];
      event_bytes += wire.size();
      lb_bytes_ += wire.size();
      ++lb_actions_;
      comm_.send_buffer(std::move(wire), to, comm::kAsyncMigrateTag);
      vp.reset();
    }
    for (int v = 0; v < vp_count_; ++v) {
      const int from = owner_[static_cast<std::size_t>(v)];
      const int to = plan[static_cast<std::size_t>(v)];
      if (to == from || to != rank_) continue;
      std::vector<std::byte> wire;
      comm_.recv_into(wire, from, comm::kAsyncMigrateTag);
      MigrateHeader h;
      PICPRK_ASSERT_MSG(wire.size() >= sizeof h, "async: short migration payload");
      std::memcpy(&h, wire.data(), sizeof h);
      PICPRK_ASSERT_MSG(h.vp == v && h.step == step_,
                        "async: migration arrived out of order");
      auto vp = std::make_unique<PicVp>(v, shared_);
      vpr::pup_unpack(*vp,
                      std::vector<std::byte>(wire.begin() + sizeof h, wire.end()));
      vps_[static_cast<std::size_t>(v)] = std::move(vp);
    }
    for (int v = 0; v < vp_count_; ++v) {
      owner_[static_cast<std::size_t>(v)] = plan[static_cast<std::size_t>(v)];
    }
    if (changed) {
      if (lb_rebalances_ != nullptr) lb_rebalances_->add(1);
    } else if (lb_skipped_ != nullptr) {
      lb_skipped_->add(1);
    }
    if (balancer_->wants_feedback()) {
      // Feedback must be globally identical: reduce the event's cost.
      struct Cost {
        double seconds, load;
        std::uint64_t bytes;
      };
      const Cost mine{event_timer.elapsed(), moved_load, event_bytes};
      const Cost merged = comm_.allreduce_value<Cost>(mine, [](Cost a, Cost b) {
        return Cost{std::max(a.seconds, b.seconds), a.load + b.load,
                    a.bytes + b.bytes};
      });
      lb::ApplyFeedback feedback;
      feedback.lb_seconds = merged.seconds;
      feedback.moved_load = merged.load;
      feedback.moved_bytes = merged.bytes;
      balancer_->note_applied(feedback);
    }
    std::fill(vp_seconds_.begin(), vp_seconds_.end(), 0.0);
  }

  comm::Comm& comm_;
  const RunConfig& config_;
  int rank_;
  int vp_count_;
  std::shared_ptr<const PicVpShared> shared_;
  std::vector<int> owner_;                       ///< vp id -> rank, replicated
  std::vector<std::unique_ptr<PicVp>> vps_;      ///< local slots (null = remote)
  std::vector<vpr::StepInbox> inbox_;            ///< early / unstepped arrivals
  std::vector<std::uint8_t> stepped_;            ///< finished this step's compute
  std::vector<double> vp_seconds_;               ///< measured load per LB epoch
  std::unique_ptr<lb::Strategy> balancer_;
  std::uint32_t step_ = 0;
  int current_vp_ = -1;
  std::optional<Token> pending_token_;  ///< next step's token, arrived early
  std::uint64_t sent_cur_ = 0;   ///< remote sends stamped step_
  std::uint64_t recv_cur_ = 0;   ///< remote receipts stamped step_
  std::uint64_t recv_next_ = 0;  ///< early receipts stamped step_ + 1
  std::uint64_t exchange_bytes_ = 0;
  std::uint64_t lb_actions_ = 0;
  std::uint64_t lb_bytes_ = 0;
  obs::Counter* overlap_deliveries_ = nullptr;
  obs::Counter* drain_deliveries_ = nullptr;
  obs::Counter* token_rounds_ = nullptr;
  obs::Counter* lb_decisions_ = nullptr;
  obs::Counter* lb_rebalances_ = nullptr;
  obs::Counter* lb_skipped_ = nullptr;
};

DriverResult AsyncEngine::run() {
  // Registration/allocation up front; the step loop allocates only for
  // payloads. Three trace spans per step: compute, wait, (lb).
  const obs::StepInstruments inst(config_.obs, "async", 0,
                                  "rank " + std::to_string(rank_), rank_,
                                  static_cast<std::size_t>(config_.steps) * 3 + 8);
  if (config_.obs.registry != nullptr) {
    overlap_deliveries_ =
        &config_.obs.registry->register_counter("async/overlap_deliveries");
    drain_deliveries_ =
        &config_.obs.registry->register_counter("async/drain_deliveries");
    token_rounds_ = &config_.obs.registry->register_counter("async/token_rounds");
  }
  lb_decisions_ = inst.lb_decisions;
  lb_rebalances_ = inst.lb_rebalances;
  lb_skipped_ = inst.lb_skipped;

  DriverResult result;
  double compute_seconds = 0.0, wait_seconds = 0.0, lb_seconds = 0.0;
  util::Timer wall;
  for (step_ = 0; step_ < config_.steps; ++step_) {
    std::fill(stepped_.begin(), stepped_.end(), 0);
    sent_cur_ = 0;
    recv_cur_ = recv_next_;  // early arrivals count toward this step
    recv_next_ = 0;
    {
      obs::Phase phase(obs::kPhaseCompute, &compute_seconds, inst.lane,
                       inst.compute);
      util::Timer vp_timer;
      for (int v = 0; v < vp_count_; ++v) {
        if (owner_[static_cast<std::size_t>(v)] != rank_) continue;
        // The overlap: arrivals from ranks that finished earlier are
        // absorbed between VP computes instead of after a barrier.
        poll_incoming(/*during_compute=*/true);
        current_vp_ = v;
        vp_timer.reset();
        vps_[static_cast<std::size_t>(v)]->step(*this);
        vp_seconds_[static_cast<std::size_t>(v)] += vp_timer.elapsed();
        stepped_[static_cast<std::size_t>(v)] = 1;
        // Eligibility point: B finished step-s compute, so every parked
        // step-s payload (local sends and early remote arrivals) lands.
        inbox_[static_cast<std::size_t>(v)].flush(
            step_, *vps_[static_cast<std::size_t>(v)]);
      }
      current_vp_ = -1;
    }
    {
      obs::Phase phase(obs::kPhaseWait, &wait_seconds, inst.lane, inst.exchange);
      drain_until_terminated();
    }
    if (config_.lb.every > 0 && (step_ + 1) % config_.lb.every == 0 &&
        step_ + 1 < config_.steps) {
      obs::Phase phase(obs::kPhaseLb, &lb_seconds, inst.lane, inst.lb);
      rebalance();
    }
    if (inst.steps != nullptr) inst.steps->add(1);
    if (config_.sample_every > 0 && step_ % config_.sample_every == 0) {
      std::uint64_t local = 0;
      for (int v = 0; v < vp_count_; ++v) {
        if (owner_[static_cast<std::size_t>(v)] == rank_) {
          local += vps_[static_cast<std::size_t>(v)]->particles().size();
        }
      }
      if (config_.obs.active()) {
        const obs::StepSample sample = sample_step_telemetry(
            comm_, static_cast<int>(step_), local, compute_seconds);
        result.step_samples.push_back(sample);
        result.imbalance_series.push_back(sample.lambda);
      } else {
        result.imbalance_series.push_back(sample_imbalance(comm_, local));
      }
    }
  }
  const double seconds = wall.elapsed();

  // Finalize against the identical invariant as run_ampi / svc::Job.
  VpVerifyTally tally;
  std::uint64_t local_particles = 0;
  for (int v = 0; v < vp_count_; ++v) {
    if (owner_[static_cast<std::size_t>(v)] != rank_) continue;
    accumulate_vp_verification(*vps_[static_cast<std::size_t>(v)], config_, tally);
    local_particles += vps_[static_cast<std::size_t>(v)]->particles().size();
  }
  result.verification = merge_verification(comm_, tally.verify);
  const std::uint64_t removed_total =
      comm_.allreduce_value(tally.removed_id_sum, std::plus<>{});
  result.expected_id_checksum =
      vpr_expected_checksum(shared_->init, config_.events, removed_total);
  result.ok = result.verification.ok(result.expected_id_checksum);

  struct Scalars {
    std::uint64_t total_particles, max_particles, sent, bytes, lb_actions, lb_bytes;
    double seconds, compute, wait, lb;
  };
  const Scalars mine{local_particles,
                     local_particles,
                     tally.sent_particles,
                     exchange_bytes_,
                     lb_actions_,
                     lb_bytes_,
                     seconds,
                     compute_seconds,
                     wait_seconds,
                     lb_seconds};
  const Scalars merged = comm_.allreduce_value<Scalars>(mine, [](Scalars a, Scalars b) {
    return Scalars{a.total_particles + b.total_particles,
                   std::max(a.max_particles, b.max_particles),
                   a.sent + b.sent,
                   a.bytes + b.bytes,
                   a.lb_actions + b.lb_actions,
                   a.lb_bytes + b.lb_bytes,
                   std::max(a.seconds, b.seconds),
                   std::max(a.compute, b.compute),
                   std::max(a.wait, b.wait),
                   std::max(a.lb, b.lb)};
  });
  result.final_particles = merged.total_particles;
  result.max_particles_per_rank = merged.max_particles;
  result.ideal_particles_per_rank =
      static_cast<double>(merged.total_particles) /
      static_cast<double>(comm_.size());
  result.seconds = merged.seconds;
  result.phases = PhaseBreakdown{merged.compute, merged.wait, merged.lb, 0.0};
  result.particles_exchanged = merged.sent;
  result.exchange_bytes = merged.bytes;
  result.lb_actions = merged.lb_actions;
  result.lb_bytes = merged.lb_bytes;
  return result;
}

}  // namespace

DriverResult run_async(comm::Comm& comm, const RunConfig& config) {
  AsyncEngine engine(comm, config);
  return engine.run();
}

DriverResult run_async(const RunConfig& config) {
  config.resilience.validate();
  for (const ft::FaultSpec& spec : config.resilience.plan.specs) {
    if (spec.kind == ft::FaultKind::Kill || spec.kind == ft::FaultKind::Stall) {
      throw std::invalid_argument(
          "async: kill/stall faults need the sync drivers' recovery ladder "
          "(checkpoints + rollback); the async engine injects message faults "
          "only");
    }
  }
  if (config.resilience.checkpoint_every > 0) {
    throw std::invalid_argument(
        "async: checkpoint/rollback is not supported; use the baseline, "
        "diffusion or ampi driver for recovery drills");
  }
  std::optional<ft::FaultInjector> injector;
  comm::WorldOptions options;
  options.timeout_ms = config.resilience.timeout_ms;
  options.deadlock_ms = config.resilience.deadlock_ms;
  if (!config.resilience.plan.empty()) {
    injector.emplace(config.resilience.plan);
    options.fault_hook = &*injector;
  }
  options.reliable.enabled = config.resilience.reliable;
  options.reliable.rto_ms = config.resilience.rto_ms;
  options.reliable.max_retransmits = config.resilience.retransmit_budget;
  comm::World world(config.ranks, options);
  DriverResult result;
  world.run([&](comm::Comm& comm) {
    DriverResult local = run_async(comm, config);
    if (comm.rank() == 0) result = local;
  });
  return result;
}

}  // namespace picprk::par
