// Rectangular domain decomposition with movable column boundaries — the
// shared geometry of the paper's three parallel implementations (§IV).
// Ranks form a Px × Py Cartesian grid; rank (I, J) owns the cell block
// [xb[I], xb[I+1]) × [yb[J], yb[J+1]). The baseline keeps the balanced
// boundaries fixed; the diffusion load balancer moves them.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/cart.hpp"
#include "pic/geometry.hpp"

namespace picprk::par {

class Decomposition2D {
 public:
  /// Balanced initial decomposition of `grid` over the process grid.
  Decomposition2D(const pic::GridSpec& grid, const comm::Cart2D& cart);

  const comm::Cart2D& cart() const { return cart_; }

  /// Column boundaries in cells; size px+1, xb[0] = 0, xb[px] = cells.
  const std::vector<std::int64_t>& x_bounds() const { return x_bounds_; }
  /// Row boundaries in cells; size py+1.
  const std::vector<std::int64_t>& y_bounds() const { return y_bounds_; }

  /// Replaces boundaries (after a load-balancing decision). Boundaries
  /// must be strictly increasing and span [0, cells].
  void set_x_bounds(std::vector<std::int64_t> xb);
  void set_y_bounds(std::vector<std::int64_t> yb);

  /// The cell block owned by `rank`.
  pic::CellRegion block_of(int rank) const;

  /// Rank owning cell (cx, cy); O(log P).
  int owner_of_cell(std::int64_t cx, std::int64_t cy) const;

  /// Rank owning physical position (x, y) in [0, L).
  int owner_of_position(double x, double y) const;

  const pic::GridSpec& grid() const { return grid_; }

 private:
  static void check_bounds(const std::vector<std::int64_t>& b, std::int64_t cells);

  pic::GridSpec grid_;
  comm::Cart2D cart_;
  std::vector<std::int64_t> x_bounds_;
  std::vector<std::int64_t> y_bounds_;
};

}  // namespace picprk::par
