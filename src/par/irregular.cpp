#include "par/irregular.hpp"

#include <algorithm>

#include "par/decomposition.hpp"
#include "par/exchange.hpp"
#include "pic/charge.hpp"
#include "pic/mover.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace picprk::par {

CellOwnerMap::CellOwnerMap(const pic::GridSpec& grid, const comm::Cart2D& cart)
    : cells_(grid.cells), ranks_(cart.size()) {
  map_.resize(static_cast<std::size_t>(cells_ * cells_));
  const Decomposition2D decomp(grid, cart);
  for (std::int64_t cy = 0; cy < cells_; ++cy) {
    for (std::int64_t cx = 0; cx < cells_; ++cx) {
      map_[index(cx, cy)] = decomp.owner_of_cell(cx, cy);
    }
  }
}

std::size_t CellOwnerMap::index(std::int64_t cx, std::int64_t cy) const {
  const std::int64_t x = pic::wrap_index(cx, cells_);
  const std::int64_t y = pic::wrap_index(cy, cells_);
  return static_cast<std::size_t>(y * cells_ + x);
}

std::int64_t CellOwnerMap::count_owned(int rank) const {
  std::int64_t n = 0;
  for (int v : map_) n += (v == rank);
  return n;
}

std::int64_t CellOwnerMap::total_perimeter() const {
  std::int64_t edges = 0;
  for (std::int64_t cy = 0; cy < cells_; ++cy) {
    for (std::int64_t cx = 0; cx < cells_; ++cx) {
      const int me = map_[index(cx, cy)];
      edges += (me != map_[index(cx + 1, cy)]);
      edges += (me != map_[index(cx, cy + 1)]);
    }
  }
  return edges;
}

std::vector<std::pair<std::int64_t, std::int64_t>> CellOwnerMap::border_cells(
    int rank) const {
  std::vector<std::pair<std::int64_t, std::int64_t>> out;
  for (std::int64_t cy = 0; cy < cells_; ++cy) {
    for (std::int64_t cx = 0; cx < cells_; ++cx) {
      if (map_[index(cx, cy)] != rank) continue;
      if (map_[index(cx - 1, cy)] != rank || map_[index(cx + 1, cy)] != rank ||
          map_[index(cx, cy - 1)] != rank || map_[index(cx, cy + 1)] != rank) {
        out.emplace_back(cx, cy);
      }
    }
  }
  return out;
}

std::int64_t irregular_lb_pass(CellOwnerMap& map, const std::vector<double>& rank_loads,
                               const IrregularParams& params) {
  PICPRK_EXPECTS(rank_loads.size() == static_cast<std::size_t>(map.ranks()));
  double total = 0;
  for (double l : rank_loads) total += l;
  const double avg = total / static_cast<double>(map.ranks());
  const double tau = params.threshold * avg;

  // Estimated particles per cell of each donor, for load accounting
  // during the pass.
  std::vector<double> load(rank_loads);
  std::vector<double> per_cell(static_cast<std::size_t>(map.ranks()), 0.0);
  for (int r = 0; r < map.ranks(); ++r) {
    const std::int64_t owned = map.count_owned(r);
    per_cell[static_cast<std::size_t>(r)] =
        owned > 0 ? load[static_cast<std::size_t>(r)] / static_cast<double>(owned) : 0.0;
  }

  // Deterministic sweep: ranks in order donate border cells to the
  // lightest 8-neighbor owner, up to the per-neighbor quota.
  std::int64_t moved = 0;
  for (int r = 0; r < map.ranks(); ++r) {
    std::vector<std::int64_t> donated(static_cast<std::size_t>(map.ranks()), 0);
    const auto border = map.border_cells(r);
    for (const auto& [cx, cy] : border) {
      if (map.owner(cx, cy) != r) continue;  // already given away this pass
      // Lightest adjacent owner over the 8-neighborhood.
      int best = -1;
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        for (std::int64_t dx = -1; dx <= 1; ++dx) {
          const int nb = map.owner(cx + dx, cy + dy);
          if (nb == r) continue;
          if (best < 0 ||
              load[static_cast<std::size_t>(nb)] < load[static_cast<std::size_t>(best)]) {
            best = nb;
          }
        }
      }
      if (best < 0) continue;
      // Trade only when the difference exceeds the threshold (§IV-B).
      if (load[static_cast<std::size_t>(r)] - load[static_cast<std::size_t>(best)] <= tau)
        continue;
      if (donated[static_cast<std::size_t>(best)] >= params.quota) continue;
      map.set_owner(cx, cy, best);
      ++donated[static_cast<std::size_t>(best)];
      ++moved;
      const double delta = per_cell[static_cast<std::size_t>(r)];
      load[static_cast<std::size_t>(r)] -= delta;
      load[static_cast<std::size_t>(best)] += delta;
    }
  }
  return moved;
}

IrregularResult run_irregular(comm::Comm& comm, const DriverConfig& config,
                              const IrregularParams& params) {
  PICPRK_EXPECTS(params.frequency >= 1);
  const comm::Cart2D cart(comm.size());
  const pic::GridSpec& grid = config.init.grid;
  CellOwnerMap map(grid, cart);

  const Decomposition2D initial_decomp(grid, cart);
  const pic::CellRegion block = initial_decomp.block_of(comm.rank());
  const pic::Initializer init(config.init);
  std::vector<pic::Particle> particles =
      init.create_block(block.x0, block.x1, block.y0, block.y1);
  // Irregular subdomains have no rectangular slab; the mover reads the
  // analytic charge pattern directly (the specification allows any
  // charge source — §III-C obliviousness).
  const pic::AlternatingColumnCharges charges(config.init.mesh_q);

  EventTracker tracker(init, config.events);
  const auto owner_of = [&](double x, double y) {
    return map.owner(grid.cell_of(x), grid.cell_of(y));
  };

  IrregularResult result;
  result.initial_perimeter = map.total_perimeter();

  util::PhaseTimer compute_timer, exchange_timer, lb_timer;
  std::uint64_t sent = 0, bytes = 0, lb_actions = 0;
  ExchangeBuffers exchange_buffers;  // steady-state exchange allocates nothing
  util::Timer wall;

  // Events need the rank's owned region; with irregular ownership we
  // apply events per owned particle (removals) and route injected
  // particles by the map: inject on the canonical block owner, then let
  // the exchange redistribute. For simplicity events apply on the rank
  // owning the *initial* block of the event cells.
  for (std::uint32_t step = 0; step < config.steps; ++step) {
    if (!config.events.empty()) tracker.apply(step, block, particles);

    compute_timer.start();
    pic::move_all(std::span<pic::Particle>(particles), grid, charges, config.init.dt);
    compute_timer.stop();

    exchange_timer.start();
    const ExchangeStats stats =
        exchange_particles_by(comm, owner_of, particles, exchange_buffers);
    exchange_timer.stop();
    sent += stats.sent;
    bytes += stats.bytes;

    if (step > 0 && step % params.frequency == 0) {
      lb_timer.start();
      // Collective load snapshot, then the identical deterministic pass
      // on every rank's replica of the map.
      std::vector<double> loads(static_cast<std::size_t>(comm.size()), 0.0);
      loads[static_cast<std::size_t>(comm.rank())] = static_cast<double>(particles.size());
      loads = comm.allreduce(std::span<const double>(loads),
                             [](double a, double b) { return a + b; });
      const std::int64_t moved = irregular_lb_pass(map, loads, params);
      if (moved > 0) {
        lb_actions += static_cast<std::uint64_t>(moved);
        const ExchangeStats lb_stats =
            exchange_particles_by(comm, owner_of, particles, exchange_buffers);
        sent += lb_stats.sent;
        bytes += lb_stats.bytes;
      }
      lb_timer.stop();
    }

    if (config.sample_every > 0 && step % config.sample_every == 0) {
      result.driver.imbalance_series.push_back(sample_imbalance(comm, particles.size()));
    }
  }
  const double seconds = wall.elapsed();
  result.final_perimeter = map.total_perimeter();

  const pic::VerifyResult local_verify =
      verify_particles(std::span<const pic::Particle>(particles), grid, config.steps,
                       config.verify_epsilon);
  finalize_result(comm, config, local_verify, tracker, particles.size(), seconds,
                  PhaseBreakdown{compute_timer.total(), exchange_timer.total(),
                                 lb_timer.total()},
                  sent, bytes, lb_actions,
                  static_cast<std::uint64_t>(lb_actions) * sizeof(double), result.driver);
  return result;
}

}  // namespace picprk::par
