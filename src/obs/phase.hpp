// The tracing half of the obs subsystem (docs/OBSERVABILITY.md): scoped
// phase timers that feed (a) the drivers' per-phase second totals, (b)
// pre-registered duration histograms, and (c) a Chrome trace_event
// timeline (--trace-out; load the file in chrome://tracing or
// https://ui.perfetto.dev) with one lane per rank / VP / worker.
//
// Compile-out: when the CMake option PICPRK_OBS is OFF the macro
// PICPRK_OBS_ENABLED is absent and Trace/TraceLane collapse to empty
// stubs, Phase keeps only the always-needed accumulation into a double
// (the drivers' PhaseBreakdown totals predate this subsystem), and
// StepInstruments registers nothing — the hot-path telemetry vanishes
// entirely while --trace-out/--metrics-out still emit valid (empty)
// documents.
//
// Zero allocation on the hot path: lanes pre-reserve their event storage
// at creation; record() drops (and counts) events beyond capacity
// instead of growing. A lane is thread-confined to the thread that works
// its pid/tid row, so record() takes no lock.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace picprk::obs {

/// True when the build carries the telemetry layer (PICPRK_OBS=ON).
inline constexpr bool kEnabled =
#if defined(PICPRK_OBS_ENABLED)
    true;
#else
    false;
#endif

// Canonical step-phase names. Static storage: a TraceEvent stores the
// pointer, never a copy.
inline constexpr const char* kPhaseCompute = "compute";        ///< force + move
inline constexpr const char* kPhaseExchange = "exchange";      ///< particle routing
inline constexpr const char* kPhaseLb = "lb";                  ///< balance + migrate
inline constexpr const char* kPhaseCheckpoint = "checkpoint";  ///< snapshot round
inline constexpr const char* kPhaseStep = "step";              ///< vpr VP superstep
inline constexpr const char* kPhaseDeliver = "deliver";        ///< vpr message delivery
inline constexpr const char* kPhaseWait = "wait";  ///< async drain / termination

#if defined(PICPRK_OBS_ENABLED)

/// One completed span on a lane (Chrome trace_event "ph":"X").
struct TraceEvent {
  const char* name = "";  ///< static-storage string (a kPhase* constant)
  double begin_us = 0.0;  ///< relative to the owning Trace's epoch
  double dur_us = 0.0;
};

class Trace;

/// One timeline row: a (pid, tid) pair in the Chrome trace model.
/// Created through Trace::lane() at setup; afterwards thread-confined to
/// the thread driving that row (vpr VP lanes migrate between workers,
/// but only at LB barriers, never mid-write).
class TraceLane {
 public:
  /// Microseconds since the owning trace's epoch; begin timestamp source
  /// for Phase.
  double now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Records a completed span. Never allocates: beyond the reserved
  /// capacity events are dropped and tallied in dropped().
  void record(const char* name, double begin_us, double dur_us) {
    if (events_.size() < events_.capacity()) {
      events_.push_back(TraceEvent{name, begin_us, dur_us});
    } else {
      ++dropped_;
    }
  }

  int pid() const { return pid_; }
  int tid() const { return tid_; }
  const std::string& process_name() const { return process_name_; }
  const std::string& thread_name() const { return thread_name_; }
  const std::vector<TraceEvent>& events() const { return events_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  friend class Trace;

  int pid_ = 0;
  int tid_ = 0;
  std::string process_name_;
  std::string thread_name_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

/// A whole trace: lanes plus the common epoch. lane() is mutex-guarded
/// (setup path); serialisation walks the lanes and must only run after
/// the instrumented threads have finished.
class Trace {
 public:
  Trace() : epoch_(std::chrono::steady_clock::now()) {}

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// Returns the lane for (pid, tid), creating it with room for
  /// `reserve_events` spans on first use. Idempotent per (pid, tid) —
  /// a resilient rerun reuses its rank's lane.
  TraceLane& lane(int pid, const std::string& process_name, int tid,
                  const std::string& thread_name, std::size_t reserve_events = 4096);

  /// Chrome trace_event JSON document ({"traceEvents":[...]}) with
  /// process_name/thread_name metadata records for the lane labels.
  std::string to_json() const;

  /// Writes to_json() to `path`; returns success.
  bool write_json(const std::string& path) const;

  std::size_t lane_count() const;
  std::uint64_t event_count() const;
  std::uint64_t dropped_count() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable util::Mutex mutex_;
  /// Deque: lanes must keep stable addresses while new lanes appear.
  std::deque<TraceLane> lanes_ PICPRK_GUARDED_BY(mutex_);
};

#else  // !PICPRK_OBS_ENABLED — telemetry compiled out

struct TraceEvent {
  const char* name = "";
  double begin_us = 0.0;
  double dur_us = 0.0;
};

/// No-op stand-in; record() compiles to nothing.
class TraceLane {
 public:
  double now_us() const { return 0.0; }
  void record(const char*, double, double) {}
  std::uint64_t dropped() const { return 0; }
};

/// Stub trace: lane() hands out a shared dummy, to_json()/write_json()
/// still produce a valid empty document so --trace-out keeps its
/// contract in PICPRK_OBS=OFF builds.
class Trace {
 public:
  Trace() = default;

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  TraceLane& lane(int, const std::string&, int, const std::string&,
                  std::size_t = 4096) {
    return lane_;
  }

  std::string to_json() const;
  bool write_json(const std::string& path) const;

  std::size_t lane_count() const { return 0; }
  std::uint64_t event_count() const { return 0; }
  std::uint64_t dropped_count() const { return 0; }

 private:
  TraceLane lane_;
};

#endif  // PICPRK_OBS_ENABLED

/// RAII scoped phase timer. Always accumulates elapsed seconds into
/// `*accum` (when given) — that is functional driver state, not
/// telemetry. When the build carries telemetry, it additionally observes
/// the duration into `hist` and records a span on `lane` (both optional;
/// in OFF builds those are stubs/ignored).
class Phase {
 public:
  explicit Phase(const char* name, double* accum = nullptr, TraceLane* lane = nullptr,
                 Histogram* hist = nullptr)
      : name_(name), accum_(accum), lane_(lane), hist_(hist) {
#if defined(PICPRK_OBS_ENABLED)
    if (lane_ != nullptr) begin_us_ = lane_->now_us();
#endif
  }

  Phase(const Phase&) = delete;
  Phase& operator=(const Phase&) = delete;

  ~Phase() { finish(); }

  /// Ends the phase early (idempotent); the destructor is then a no-op.
  void finish() {
    if (finished_) return;
    finished_ = true;
    const double seconds = timer_.elapsed();
    if (accum_ != nullptr) *accum_ += seconds;
#if defined(PICPRK_OBS_ENABLED)
    if (hist_ != nullptr) hist_->observe(seconds);
    if (lane_ != nullptr) lane_->record(name_, begin_us_, seconds * 1e6);
#endif
  }

 private:
  const char* name_;
  double* accum_;
  TraceLane* lane_;
  Histogram* hist_;
  double begin_us_ = 0.0;
  bool finished_ = false;
  util::Timer timer_;
};

/// What a caller hands a driver to switch telemetry on: both pointers
/// null (the default) means "run dark", exactly the legacy behaviour.
struct Hooks {
  Registry* registry = nullptr;
  Trace* trace = nullptr;

  bool active() const { return kEnabled && (registry != nullptr || trace != nullptr); }
};

/// Per-driver-thread bundle of pre-registered instruments: the canonical
/// phase histograms, the step/exchange counters and this thread's trace
/// lane. Construction does all the registration (mutexes, strings,
/// allocation); the step loop only dereferences the handles. In
/// PICPRK_OBS=OFF builds construction is a no-op and every handle stays
/// null.
struct StepInstruments {
  TraceLane* lane = nullptr;
  Histogram* compute = nullptr;
  Histogram* exchange = nullptr;
  Histogram* lb = nullptr;
  Histogram* checkpoint = nullptr;
  Counter* steps = nullptr;
  Counter* exchange_sent = nullptr;
  Counter* exchange_received = nullptr;
  Counter* exchange_bytes = nullptr;
  /// LB strategy-layer decision tallies: every invocation bumps
  /// lb_decisions and exactly one of lb_rebalances (the plan changed)
  /// or lb_skipped (the strategy declined — e.g. `adaptive`'s cost
  /// model). rebalances + skipped == decisions by construction.
  Counter* lb_decisions = nullptr;
  Counter* lb_rebalances = nullptr;
  Counter* lb_skipped = nullptr;

  StepInstruments() = default;

  /// `process`/`pid` name the trace process row (e.g. "baseline"/0);
  /// `thread_label`/`tid` name this thread's lane ("rank 2"). Reserve
  /// enough events for the run: drivers pass ~4 spans per step.
  StepInstruments(const Hooks& hooks, const std::string& process, int pid,
                  const std::string& thread_label, int tid, std::size_t reserve_events);
};

}  // namespace picprk::obs
