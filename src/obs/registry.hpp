// The metrics half of the obs subsystem (docs/OBSERVABILITY.md): named
// counters, gauges and fixed-bucket histograms behind a Registry.
//
// Design contract — zero allocation on the hot path:
//  * registration (Registry::register_*) happens once, at setup, under a
//    mutex; it may allocate and takes std::string names. picprk-lint's
//    `obs` rule rejects any register_* call inside a PICPRK_HOT body.
//  * the returned Counter&/Gauge&/Histogram& handles have stable
//    addresses for the registry's lifetime; recording through them is a
//    relaxed atomic add/store — safe from any thread, no locks, no
//    allocation, PICPRK_HOT-clean.
//
// The instruments themselves are always compiled (they are plain atomics
// and double as functional tallies, e.g. the fault-injection counters);
// what PICPRK_OBS=OFF compiles out is the *instrumentation* — phase
// tracing and the drivers' per-step recording sites (see obs/phase.hpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/annotations.hpp"
#include "util/thread_annotations.hpp"

namespace picprk::obs {

/// Monotonic event tally. Relaxed atomics: totals are exact, ordering
/// against other memory is not implied (these are statistics, not
/// synchronization).
class Counter {
 public:
  PICPRK_HOT void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }

  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-writer-wins instantaneous value (e.g. "current imbalance").
class Gauge {
 public:
  PICPRK_HOT void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }

  double value() const noexcept { return value_.load(std::memory_order_relaxed); }

  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram over [lo, hi): equal-width buckets, values
/// outside the range are clamped into the first/last bucket so every
/// observation is counted. Bucket geometry is fixed at registration;
/// observe() is a single relaxed fetch_add on the target bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  PICPRK_HOT void observe(double x) noexcept {
    const double t = (x - lo_) * scale_;
    std::int64_t idx = static_cast<std::int64_t>(t);
    if (t < 0.0) idx = 0;
    const auto last = static_cast<std::int64_t>(counts_.size()) - 1;
    if (idx > last) idx = last;
    counts_[static_cast<std::size_t>(idx)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // fetch_add on std::atomic<double> is C++20 but not yet universally
    // lock-free in libstdc++; a CAS loop is portable and equally cheap at
    // telemetry rates.
    double sum = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(sum, sum + x, std::memory_order_relaxed)) {
    }
  }

  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  std::size_t buckets() const noexcept { return counts_.size(); }
  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

  /// Relaxed snapshot of the per-bucket counts.
  std::vector<std::uint64_t> snapshot() const;

  /// Interpolated quantile of the bucketed sample, `p` in [0, 100]
  /// (util::histogram_quantile on a snapshot).
  double quantile(double p) const;

  void reset() noexcept;

 private:
  double lo_;
  double hi_;
  double scale_;  ///< buckets / (hi - lo), hoisted out of observe()
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Named instrument registry. register_* is idempotent: the same name
/// returns the same instrument (histogram bucket geometry must match).
/// Registration is mutex-guarded and allocates; lookups through the
/// returned references are lock-free. Instruments live as long as the
/// registry (deque storage: stable addresses).
class Registry {
 public:
  Registry() = default;

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& register_counter(const std::string& name);
  Gauge& register_gauge(const std::string& name);
  Histogram& register_histogram(const std::string& name, double lo, double hi,
                                std::size_t buckets);

  /// Lookup without creating; nullptr when absent.
  Counter* find_counter(const std::string& name) const;
  Gauge* find_gauge(const std::string& name) const;
  Histogram* find_histogram(const std::string& name) const;

  /// Point-in-time views for the sinks (obs/sinks.hpp). Name-sorted.
  struct CounterView {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeView {
    std::string name;
    double value = 0.0;
  };
  struct HistogramView {
    std::string name;
    double lo = 0.0;
    double hi = 0.0;
    std::uint64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    std::vector<std::uint64_t> buckets;
  };

  std::vector<CounterView> counters() const;
  std::vector<GaugeView> gauges() const;
  std::vector<HistogramView> histograms() const;

  std::size_t size() const;

  /// Zeroes every instrument (bench reuse); names stay registered.
  void reset_values();

 private:
  template <typename T>
  struct Named {
    std::string name;
    T instrument;

    template <typename... Args>
    explicit Named(std::string n, Args&&... args)
        : name(std::move(n)), instrument(std::forward<Args>(args)...) {}
  };

  mutable util::Mutex mutex_;
  std::deque<Named<Counter>> counters_ PICPRK_GUARDED_BY(mutex_);
  std::deque<Named<Gauge>> gauges_ PICPRK_GUARDED_BY(mutex_);
  std::deque<Named<Histogram>> histograms_ PICPRK_GUARDED_BY(mutex_);
};

}  // namespace picprk::obs
