// Export sinks for the obs subsystem: the --metrics-out JSON document
// (same "picprk-bench-v1" schema the bench harnesses emit, so existing
// tooling parses both), and the end-of-run summary table printed by the
// CLI. Sinks run after the instrumented threads have joined; they are
// cold-path code and may allocate freely.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "util/report.hpp"

namespace picprk::obs {

/// One per-step cross-rank imbalance observation, produced by the
/// drivers' telemetry gather (par::sample_step_telemetry): particle-count
/// imbalance lambda = max/mean plus the same ratio over measured compute
/// seconds. Lives here (not in par) so sinks can export it without a
/// dependency on the communication layer.
struct StepSample {
  int step = 0;
  double lambda = 1.0;         ///< max/mean particles per rank
  double max_load = 0.0;       ///< particles on the fullest rank
  double mean_load = 0.0;      ///< particles per rank, averaged
  double lambda_compute = 1.0; ///< max/mean per-rank compute seconds
};

/// Builds the --metrics-out document: {"schema":"picprk-bench-v1",
/// "benchmark":<name>, "config":<config>, "results":[...]} where results
/// holds one object per counter/gauge/histogram plus one "imbalance"
/// object per step sample.
util::JsonObject metrics_document(const std::string& benchmark,
                                  const util::JsonObject& config,
                                  const Registry& registry,
                                  const std::vector<StepSample>& samples);

/// Writes metrics_document() to `path`; returns success.
bool write_metrics_json(const std::string& path, const std::string& benchmark,
                        const util::JsonObject& config, const Registry& registry,
                        const std::vector<StepSample>& samples);

/// Human-readable end-of-run tables (util::Table): counters/gauges, then
/// histogram quantiles, then the per-step imbalance series tail.
void print_summary(std::ostream& os, const Registry& registry,
                   const std::vector<StepSample>& samples);

}  // namespace picprk::obs
