#include "obs/phase.hpp"

#include <cstdio>
#include <fstream>

namespace picprk::obs {

#if defined(PICPRK_OBS_ENABLED)

namespace {

/// Minimal JSON string escaping for lane labels (our own short names,
/// but keep the document well-formed whatever the caller passes).
void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

}  // namespace

TraceLane& Trace::lane(int pid, const std::string& process_name, int tid,
                       const std::string& thread_name, std::size_t reserve_events) {
  util::LockGuard lock(mutex_);
  for (TraceLane& l : lanes_) {
    if (l.pid_ == pid && l.tid_ == tid) return l;
  }
  lanes_.emplace_back();
  TraceLane& l = lanes_.back();
  l.pid_ = pid;
  l.tid_ = tid;
  l.process_name_ = process_name;
  l.thread_name_ = thread_name;
  l.events_.reserve(reserve_events);
  l.epoch_ = epoch_;
  return l;
}

std::string Trace::to_json() const {
  util::LockGuard lock(mutex_);
  std::string out;
  // ~96 bytes per span record; headroom for metadata.
  std::size_t n = 0;
  for (const TraceLane& l : lanes_) n += l.events_.size();
  out.reserve(n * 96 + lanes_.size() * 256 + 64);

  out += "{\"traceEvents\":[";
  bool first = true;
  for (const TraceLane& l : lanes_) {
    // Metadata records give Perfetto/chrome://tracing its row labels.
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(l.pid_);
    out += ",\"tid\":0,\"args\":{\"name\":\"";
    append_escaped(out, l.process_name_);
    out += "\"}},{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(l.pid_);
    out += ",\"tid\":";
    out += std::to_string(l.tid_);
    out += ",\"args\":{\"name\":\"";
    append_escaped(out, l.thread_name_);
    out += "\"}}";
    for (const TraceEvent& e : l.events_) {
      out += ",{\"name\":\"";
      out += e.name;  // static kPhase* strings, no escaping needed
      out += "\",\"ph\":\"X\",\"ts\":";
      append_double(out, e.begin_us);
      out += ",\"dur\":";
      append_double(out, e.dur_us);
      out += ",\"pid\":";
      out += std::to_string(l.pid_);
      out += ",\"tid\":";
      out += std::to_string(l.tid_);
      out += '}';
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool Trace::write_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_json() << '\n';
  return static_cast<bool>(f);
}

std::size_t Trace::lane_count() const {
  util::LockGuard lock(mutex_);
  return lanes_.size();
}

std::uint64_t Trace::event_count() const {
  util::LockGuard lock(mutex_);
  std::uint64_t n = 0;
  for (const TraceLane& l : lanes_) n += l.events_.size();
  return n;
}

std::uint64_t Trace::dropped_count() const {
  util::LockGuard lock(mutex_);
  std::uint64_t n = 0;
  for (const TraceLane& l : lanes_) n += l.dropped_;
  return n;
}

StepInstruments::StepInstruments(const Hooks& hooks, const std::string& process, int pid,
                                 const std::string& thread_label, int tid,
                                 std::size_t reserve_events) {
  if (hooks.trace != nullptr) {
    lane = &hooks.trace->lane(pid, process, tid, thread_label, reserve_events);
  }
  if (hooks.registry != nullptr) {
    Registry& reg = *hooks.registry;
    const std::string prefix = thread_label + "/";
    // 0–50 ms equal-width buckets cover the per-phase durations of every
    // test- and bench-sized run; longer phases clamp into the last bucket
    // but still count toward count/sum (mean stays exact).
    compute = &reg.register_histogram(prefix + "phase_compute_seconds", 0.0, 0.05, 100);
    exchange = &reg.register_histogram(prefix + "phase_exchange_seconds", 0.0, 0.05, 100);
    lb = &reg.register_histogram(prefix + "phase_lb_seconds", 0.0, 0.05, 100);
    checkpoint =
        &reg.register_histogram(prefix + "phase_checkpoint_seconds", 0.0, 0.05, 100);
    steps = &reg.register_counter(prefix + "steps");
    exchange_sent = &reg.register_counter(prefix + "exchange_particles_sent");
    exchange_received = &reg.register_counter(prefix + "exchange_particles_received");
    exchange_bytes = &reg.register_counter(prefix + "exchange_bytes");
    lb_decisions = &reg.register_counter(prefix + "lb_decisions");
    lb_rebalances = &reg.register_counter(prefix + "lb_rebalances");
    lb_skipped = &reg.register_counter(prefix + "lb_skipped");
  }
}

#else  // !PICPRK_OBS_ENABLED

std::string Trace::to_json() const { return "{\"traceEvents\":[]}"; }

bool Trace::write_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_json() << '\n';
  return static_cast<bool>(f);
}

StepInstruments::StepInstruments(const Hooks&, const std::string&, int,
                                 const std::string&, int, std::size_t) {}

#endif  // PICPRK_OBS_ENABLED

}  // namespace picprk::obs
