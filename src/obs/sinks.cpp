#include "obs/sinks.hpp"

#include <algorithm>
#include <cstddef>
#include <ostream>
#include <utility>

#include "util/table.hpp"

namespace picprk::obs {

util::JsonObject metrics_document(const std::string& benchmark,
                                  const util::JsonObject& config,
                                  const Registry& registry,
                                  const std::vector<StepSample>& samples) {
  util::JsonObject doc;
  doc.add("schema", std::string("picprk-bench-v1"));
  doc.add("benchmark", benchmark);
  doc.add("config", config);

  std::vector<util::JsonObject> results;
  for (const Registry::CounterView& c : registry.counters()) {
    util::JsonObject r;
    r.add("kind", std::string("counter"));
    r.add("name", c.name);
    r.add("value", c.value);
    results.push_back(std::move(r));
  }
  for (const Registry::GaugeView& g : registry.gauges()) {
    util::JsonObject r;
    r.add("kind", std::string("gauge"));
    r.add("name", g.name);
    r.add("value", g.value);
    results.push_back(std::move(r));
  }
  for (const Registry::HistogramView& h : registry.histograms()) {
    util::JsonObject r;
    r.add("kind", std::string("histogram"));
    r.add("name", h.name);
    r.add("lo", h.lo);
    r.add("hi", h.hi);
    r.add("count", h.count);
    r.add("sum", h.sum);
    r.add("mean", h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0);
    r.add("p50", h.p50);
    r.add("p99", h.p99);
    std::vector<double> buckets(h.buckets.begin(), h.buckets.end());
    r.add("buckets", buckets);
    results.push_back(std::move(r));
  }
  for (const StepSample& s : samples) {
    util::JsonObject r;
    r.add("kind", std::string("imbalance"));
    r.add("step", static_cast<std::int64_t>(s.step));
    r.add("lambda", s.lambda);
    r.add("max_load", s.max_load);
    r.add("mean_load", s.mean_load);
    r.add("lambda_compute", s.lambda_compute);
    results.push_back(std::move(r));
  }
  doc.add("results", results);
  return doc;
}

bool write_metrics_json(const std::string& path, const std::string& benchmark,
                        const util::JsonObject& config, const Registry& registry,
                        const std::vector<StepSample>& samples) {
  return util::write_json_file(path,
                               metrics_document(benchmark, config, registry, samples));
}

void print_summary(std::ostream& os, const Registry& registry,
                   const std::vector<StepSample>& samples) {
  const auto counters = registry.counters();
  const auto gauges = registry.gauges();
  if (!counters.empty() || !gauges.empty()) {
    os << "telemetry: counters & gauges\n";
    util::Table t({"name", "value"});
    for (const auto& c : counters) t.add_row({c.name, util::Table::fmt_u64(c.value)});
    for (const auto& g : gauges) t.add_row({g.name, util::Table::fmt(g.value, 4)});
    t.print(os);
  }

  const auto hists = registry.histograms();
  if (!hists.empty()) {
    os << "telemetry: phase histograms\n";
    util::Table t({"name", "count", "mean", "p50", "p99"});
    for (const auto& h : hists) {
      const double mean = h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
      t.add_row({h.name, util::Table::fmt_u64(h.count), util::Table::fmt(mean, 6),
                 util::Table::fmt(h.p50, 6), util::Table::fmt(h.p99, 6)});
    }
    t.print(os);
  }

  if (!samples.empty()) {
    os << "telemetry: imbalance (last " << std::min<std::size_t>(samples.size(), 8)
       << " of " << samples.size() << " samples)\n";
    util::Table t({"step", "lambda", "max", "mean", "lambda_t"});
    const std::size_t first = samples.size() > 8 ? samples.size() - 8 : 0;
    for (std::size_t i = first; i < samples.size(); ++i) {
      const StepSample& s = samples[i];
      t.add_row({util::Table::fmt_u64(static_cast<std::uint64_t>(s.step)),
                 util::Table::fmt(s.lambda, 4), util::Table::fmt(s.max_load, 1),
                 util::Table::fmt(s.mean_load, 1),
                 util::Table::fmt(s.lambda_compute, 4)});
    }
    t.print(os);
  }
}

}  // namespace picprk::obs
