#include "obs/registry.hpp"

#include <algorithm>
#include <span>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace picprk::obs {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo),
      hi_(hi),
      scale_(static_cast<double>(buckets) / (hi - lo)),
      counts_(buckets) {
  PICPRK_EXPECTS(hi > lo);
  PICPRK_EXPECTS(buckets > 0);
}

std::vector<std::uint64_t> Histogram::snapshot() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::quantile(double p) const {
  const std::vector<std::uint64_t> counts = snapshot();
  return util::histogram_quantile(std::span<const std::uint64_t>(counts), lo_, hi_, p);
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

namespace {

/// Linear scan: registries hold tens of instruments and register_* runs
/// at setup only, so a map would buy nothing.
template <typename Deque>
auto* find_named(Deque& items, const std::string& name) {
  for (auto& item : items) {
    if (item.name == name) return &item.instrument;
  }
  using Instrument = decltype(&items.front().instrument);
  return static_cast<Instrument>(nullptr);
}

}  // namespace

Counter& Registry::register_counter(const std::string& name) {
  util::LockGuard lock(mutex_);
  if (Counter* existing = find_named(counters_, name)) return *existing;
  counters_.emplace_back(name);
  return counters_.back().instrument;
}

Gauge& Registry::register_gauge(const std::string& name) {
  util::LockGuard lock(mutex_);
  if (Gauge* existing = find_named(gauges_, name)) return *existing;
  gauges_.emplace_back(name);
  return gauges_.back().instrument;
}

Histogram& Registry::register_histogram(const std::string& name, double lo, double hi,
                                        std::size_t buckets) {
  util::LockGuard lock(mutex_);
  if (Histogram* existing = find_named(histograms_, name)) {
    PICPRK_EXPECTS(existing->lo() == lo && existing->hi() == hi &&
                   existing->buckets() == buckets);
    return *existing;
  }
  histograms_.emplace_back(name, lo, hi, buckets);
  return histograms_.back().instrument;
}

Counter* Registry::find_counter(const std::string& name) const {
  util::LockGuard lock(mutex_);
  return const_cast<Counter*>(find_named(counters_, name));
}

Gauge* Registry::find_gauge(const std::string& name) const {
  util::LockGuard lock(mutex_);
  return const_cast<Gauge*>(find_named(gauges_, name));
}

Histogram* Registry::find_histogram(const std::string& name) const {
  util::LockGuard lock(mutex_);
  return const_cast<Histogram*>(find_named(histograms_, name));
}

std::vector<Registry::CounterView> Registry::counters() const {
  std::vector<CounterView> out;
  {
    util::LockGuard lock(mutex_);
    out.reserve(counters_.size());
    for (const auto& c : counters_) out.push_back({c.name, c.instrument.value()});
  }
  std::sort(out.begin(), out.end(),
            [](const CounterView& a, const CounterView& b) { return a.name < b.name; });
  return out;
}

std::vector<Registry::GaugeView> Registry::gauges() const {
  std::vector<GaugeView> out;
  {
    util::LockGuard lock(mutex_);
    out.reserve(gauges_.size());
    for (const auto& g : gauges_) out.push_back({g.name, g.instrument.value()});
  }
  std::sort(out.begin(), out.end(),
            [](const GaugeView& a, const GaugeView& b) { return a.name < b.name; });
  return out;
}

std::vector<Registry::HistogramView> Registry::histograms() const {
  std::vector<HistogramView> out;
  {
    util::LockGuard lock(mutex_);
    out.reserve(histograms_.size());
    for (const auto& h : histograms_) {
      HistogramView view;
      view.name = h.name;
      view.lo = h.instrument.lo();
      view.hi = h.instrument.hi();
      view.count = h.instrument.count();
      view.sum = h.instrument.sum();
      view.p50 = h.instrument.quantile(50.0);
      view.p99 = h.instrument.quantile(99.0);
      view.buckets = h.instrument.snapshot();
      out.push_back(std::move(view));
    }
  }
  std::sort(out.begin(), out.end(), [](const HistogramView& a, const HistogramView& b) {
    return a.name < b.name;
  });
  return out;
}

std::size_t Registry::size() const {
  util::LockGuard lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void Registry::reset_values() {
  util::LockGuard lock(mutex_);
  for (auto& c : counters_) c.instrument.reset();
  for (auto& g : gauges_) g.instrument.reset();
  for (auto& h : histograms_) h.instrument.reset();
}

}  // namespace picprk::obs
