#include "svc/job.hpp"

#include <algorithm>
#include <span>

#include "pic/init.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"
#include "vpr/pup.hpp"

namespace picprk::svc {

namespace {

/// Rollback attempts before a job gives up and fails.
constexpr std::uint32_t kMaxRecoveries = 3;

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

Job::Job(int id, JobSpec spec) : id_(id), spec_(std::move(spec)) {
  spec_.run.workers = 1;  // the server's pool supplies the parallelism
  if (spec_.kill_vp >= 0) {
    ft::FaultPlan plan;
    plan.seed = 1;
    ft::FaultSpec kill;
    kill.kind = ft::FaultKind::Kill;
    kill.rank = spec_.kill_vp;
    kill.step = spec_.kill_step;
    plan.specs.push_back(kill);
    injector_ = std::make_unique<ft::FaultInjector>(std::move(plan));
  }
  if (spec_.checkpoint_every > 0) store_ = std::make_unique<ft::CheckpointStore>();
  spec_.run.ft.injector = injector_.get();
  spec_.run.ft.store = store_.get();
  spec_.run.ft.checkpoint_every = spec_.checkpoint_every;
  // Registry: this job's own. Trace: deliberately none — every vpr
  // runtime names its VP lanes under pid 1, so per-job runtimes sharing
  // one Trace would collide; the server instead keeps one lane per job
  // (pid = job id) and records the job's quanta there.
  spec_.run.obs.registry = &registry_;
  spec_.run.obs.trace = nullptr;

  const int vps = spec_.run.overdecomposition;
  shared_ = std::make_shared<const par::PicVpShared>(spec_.run, vps);

  vpr::RuntimeConfig rt;
  rt.workers = 1;  // inline superstep path: no nested threads under the pool
  rt.vps = vps;
  rt.lb_interval = spec_.run.lb.every;
  rt.balancer = spec_.run.lb.strategy.empty() ? "greedy" : spec_.run.lb.strategy;
  rt.use_measured_load = spec_.run.lb.measured;
  rt.obs.registry = &registry_;
  auto shared = shared_;
  runtime_ = std::make_unique<vpr::Runtime>(
      rt, [shared](int vp) { return std::make_unique<par::PicVp>(vp, shared); });
  runtime_->for_each_vp(
      [](vpr::VirtualProcessor& vp) { static_cast<par::PicVp&>(vp).populate(); });
  step_hist_ = &registry_.register_histogram("svc/step_seconds", 0.0, 0.02, 200);
}

void Job::checkpoint_all(std::uint32_t step) {
  const int vps = runtime_->vps();
  for (int v = 0; v < vps; ++v) {
    std::vector<std::byte> packed = vpr::pup_pack(runtime_->vp(v));
    store_->save_buddy(v, step, packed);
    store_->save(v, step, std::move(packed));
  }
}

bool Job::recover() {
  const int vps = runtime_->vps();
  const auto consistent = store_->consistent_step(vps);
  if (!consistent || recoveries_ >= kMaxRecoveries) return false;
  runtime_->rewind(*consistent);
  for (int v = 0; v < vps; ++v) {
    auto bytes = store_->load(v, *consistent);
    if (!bytes) return false;
    vpr::pup_unpack(runtime_->vp(v), std::move(*bytes));
  }
  steps_done_ = *consistent;
  ++recoveries_;
  return true;
}

void Job::sample(std::uint32_t step) {
  const int vps = runtime_->vps();
  double total = 0.0, max = 0.0;
  for (int v = 0; v < vps; ++v) {
    const double load = runtime_->vp(v).load();
    total += load;
    max = std::max(max, load);
  }
  const double mean = total / static_cast<double>(vps);
  obs::StepSample s;
  s.step = static_cast<int>(step);
  s.lambda = mean > 0 ? max / mean : 1.0;
  s.max_load = max;
  s.mean_load = mean;
  s.lambda_compute = s.lambda;  // single-tenant view: counts double as load
  samples_.push_back(s);
}

void Job::advance(std::uint32_t n) {
  if (state_ != JobState::kRunning || n == 0) return;
  ++cycles_;
  const bool checkpointing = spec_.checkpoint_every > 0;
  util::Timer quantum_timer;
  std::uint32_t executed = 0;
  try {
    while (executed < n && steps_done_ < spec_.run.steps) {
      if (checkpointing && steps_done_ % spec_.checkpoint_every == 0) {
        checkpoint_all(steps_done_);
      }
      util::Timer step_timer;
      try {
        runtime_->run(1);
      } catch (const ft::RankKilled& e) {
        // The drill killed one of *this job's* VPs. Lose its primary
        // snapshots, roll the job back through its own store, and keep
        // going — neighbours never see any of it.
        store_->drop_primary(e.rank());
        if (!recover()) throw;
        continue;
      }
      ++steps_done_;
      ++executed;
      step_hist_->observe(step_timer.elapsed());
      if (spec_.run.sample_every > 0 && steps_done_ % spec_.run.sample_every == 0) {
        sample(steps_done_);
      }
    }
  } catch (const std::exception& e) {
    state_ = JobState::kFailed;
    failure_ = e.what();
    result_.recoveries = recoveries_;
    seconds_ += quantum_timer.elapsed();
    return;
  }
  const double elapsed = quantum_timer.elapsed();
  seconds_ += elapsed;
  if (executed > 0) {
    const double per_step = elapsed / static_cast<double>(executed);
    // EWMA with a half-life of one cycle: reactive enough to follow a
    // job through its skew drift, stable enough for placement.
    cost_per_step_ =
        cost_per_step_ <= 0.0 ? per_step : 0.5 * cost_per_step_ + 0.5 * per_step;
  }
  if (steps_done_ >= spec_.run.steps) finalize();
}

void Job::cancel() {
  if (state_ != JobState::kRunning) return;
  state_ = JobState::kCancelled;
  result_.recoveries = recoveries_;
}

void Job::finalize() {
  par::VpVerifyTally tally;
  runtime_->for_each_vp([&](vpr::VirtualProcessor& base) {
    accumulate_vp_verification(static_cast<par::PicVp&>(base), spec_.run, tally);
  });
  const pic::VerifyResult& verify = tally.verify;
  const std::uint64_t expected =
      par::vpr_expected_checksum(shared_->init, spec_.run.events, tally.removed_id_sum);

  result_.ok = verify.ok(expected);
  result_.final_particles = verify.checked;
  result_.id_checksum = verify.id_checksum;
  result_.expected_checksum = expected;
  result_.recoveries = recoveries_;
  result_.migrations = runtime_->stats().migrations;

  // Headline scalars into the job registry so the per-tenant metrics
  // document is self-contained (same idea as picprk's absorb_result).
  registry_.register_gauge("job/seconds").set(seconds_);
  registry_.register_gauge("job/steps").set(static_cast<double>(steps_done_));
  registry_.register_gauge("job/final_particles")
      .set(static_cast<double>(result_.final_particles));
  registry_.register_counter("job/recoveries").add(recoveries_);
  registry_.register_counter("job/migrations").add(result_.migrations);
  if (injector_ != nullptr) {
    for (const auto& view : injector_->metrics().counters()) {
      registry_.register_counter(view.name).add(view.value);
    }
  }
  if (store_ != nullptr) {
    for (const auto& view : store_->metrics().counters()) {
      registry_.register_counter(view.name).add(view.value);
    }
  }
  state_ = JobState::kDone;
}

util::JsonObject Job::config_json() const {
  util::JsonObject config;
  config.add("job", spec_.name);
  config.add("cells", spec_.run.init.grid.cells);
  config.add("particles", spec_.run.init.total_particles);
  config.add("steps", static_cast<std::int64_t>(spec_.run.steps));
  config.add("dist", pic::distribution_name(spec_.run.init.distribution));
  config.add("d", static_cast<std::int64_t>(spec_.run.overdecomposition));
  config.add("balancer",
             spec_.run.lb.strategy.empty() ? "greedy" : spec_.run.lb.strategy);
  config.add("lb_every", static_cast<std::int64_t>(spec_.run.lb.every));
  config.add("weight", spec_.weight);
  config.add("seed", spec_.run.init.seed);
  config.add("checkpoint_every", static_cast<std::int64_t>(spec_.checkpoint_every));
  return config;
}

}  // namespace picprk::svc
