// Job-spec grammar of the multi-tenant service mode (docs/SERVICE.md).
// One tenant = one line in the serve input stream:
//
//   submit <name>:key=val,key=val,...
//   cancel <name>
//   drain
//
// The spec part reuses the lb registry's `name:key=val,...` splitter
// (lb::parse_spec), so tenants describe a kernel instance exactly the
// way balancers describe their knobs. Keys cover the kernel (cells,
// particles, steps, dist, ...), the per-job vpr shape (d, balancer,
// lb_every), the scheduler share (weight) and the fault drill (kill_vp,
// kill_step, checkpoint_every). The balancer value encodes its own
// nested options with '/' instead of ',' — `balancer=adaptive/inner=rcb`
// — because ',' already separates spec keys; likewise the fault knobs
// are dedicated keys instead of an embedded FaultPlan string (whose
// grammar collides with the spec splitter on ',' and '=').
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "par/run_config.hpp"

namespace picprk::svc {

/// One tenant's job description, parsed from a `name:key=val,...` line.
struct JobSpec {
  std::string name;
  /// The kernel instance. workers is pinned to 1: a job's supersteps run
  /// inline inside one pool task per cycle (the job is the super-VP the
  /// cross-job scheduler places); overdecomposition gives the VP count.
  par::RunConfig run;
  /// Weighted fair share: steps granted per cycle = quantum × weight.
  double weight = 1.0;
  /// Scripted fault drill, isolated to this tenant: kill VP `kill_vp`
  /// at step `kill_step` (-1 = no fault). Requires checkpoint_every > 0
  /// so the job can roll itself back.
  int kill_vp = -1;
  std::uint32_t kill_step = 0;
  /// Buddy-checkpoint the job's VPs every N steps (0 = never); the
  /// store lives inside the job, so checkpoint namespaces never collide
  /// across tenants.
  std::uint32_t checkpoint_every = 0;
};

/// Parses one job spec. Throws std::invalid_argument (naming the job
/// and the offending key) on unknown keys, malformed values or
/// nonsensical combinations (kill without checkpointing, kill_vp out of
/// the VP range, weight <= 0).
JobSpec parse_job_spec(const std::string& text);

/// One parsed line of the serve input stream.
struct Command {
  enum class Kind { kSubmit, kCancel, kDrain };
  Kind kind = Kind::kDrain;
  JobSpec spec;        ///< kSubmit only
  std::string target;  ///< kCancel only: the job name
};

/// Parses one input line; std::nullopt for blank lines and '#' comments.
/// Throws std::invalid_argument on unknown verbs or malformed specs.
std::optional<Command> parse_command(const std::string& line);

}  // namespace picprk::svc
