// Admission control of the job server: a bounded table of live tenants.
// The bound is the backpressure mechanism — a submit beyond capacity is
// rejected loudly with a typed AdmissionError (never silently queued,
// never silently dropped), so a client always knows whether its job got
// a seat. Externally synchronized, like everything on the server's
// control path.
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "svc/job.hpp"

namespace picprk::svc {

/// Typed rejection: the table is at capacity. Carries the job name and
/// the capacity so callers (and tests) can report precisely.
class AdmissionError : public std::runtime_error {
 public:
  AdmissionError(std::string job, std::size_t capacity)
      : std::runtime_error("svc: job '" + job + "' rejected — server at capacity (" +
                           std::to_string(capacity) + " active jobs); drain first"),
        job_(std::move(job)),
        capacity_(capacity) {}

  const std::string& job() const noexcept { return job_; }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::string job_;
  std::size_t capacity_;
};

class JobTable {
 public:
  explicit JobTable(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }

  /// Admits a job (ids are assigned 1, 2, ... — id 0 is the server's own
  /// trace lane). Throws AdmissionError when the active count is at
  /// capacity and std::invalid_argument on a duplicate live name.
  Job& submit(JobSpec spec);

  /// nullptr when no live job has that name.
  Job* find(const std::string& name);

  /// Running jobs, in admission order (deterministic scheduler input).
  std::vector<Job*> active();

  /// Every job ever admitted, in admission order (for the drain table).
  std::vector<Job*> all();

  std::size_t active_count() const;

 private:
  std::size_t capacity_;
  int next_id_ = 1;
  std::vector<std::unique_ptr<Job>> jobs_;
};

}  // namespace picprk::svc
