#include "svc/server.hpp"

#include <algorithm>
#include <iostream>
#include <istream>
#include <ostream>

#include "obs/sinks.hpp"
#include "util/report.hpp"
#include "util/table.hpp"

namespace picprk::svc {

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      // The pool shares the server registry (ws/tasks, ws/steals land in
      // server.json) but not the trace: pool lanes live at pid 2, which a
      // tenant id would collide with — the server's per-job lanes are the
      // only trace rows.
      pool_(config_.workers < 1 ? 1 : config_.workers,
            obs::Hooks{&registry_, nullptr}),
      table_(config_.queue_capacity),
      scheduler_(config_.scheduler) {
  cycles_counter_ = &registry_.register_counter("svc/cycles");
  steps_counter_ = &registry_.register_counter("svc/job_steps");
  steals_counter_ = &registry_.register_counter("svc/steals");
  rejected_counter_ = &registry_.register_counter("svc/rejected");
}

Job& Server::submit(JobSpec spec) {
  try {
    Job& job = table_.submit(std::move(spec));
    lane_of(job);  // create the tenant's trace lane before any task runs
    return job;
  } catch (const AdmissionError&) {
    rejected_counter_->add(1);
    throw;
  }
}

bool Server::cancel(const std::string& name) {
  Job* job = table_.find(name);
  if (job == nullptr || job->state() != JobState::kRunning) return false;
  job->cancel();
  return true;
}

obs::TraceLane* Server::lane_of(const Job& job) {
  // pid = job id: each tenant renders as its own process row in the
  // trace viewer; tid 0 carries the job's per-cycle quantum spans.
  return &trace_.lane(job.id(), "job " + job.name(), 0, "quanta",
                      /*reserve_events=*/8192);
}

void Server::run_cycle(const std::vector<Job*>& jobs) {
  CycleInput in;
  in.cycle = cycle_++;
  in.quantum = config_.quantum;
  in.workers = pool_.workers();
  in.jobs.reserve(jobs.size());
  for (const Job* job : jobs) {
    JobLoad load;
    load.job = job->id();
    load.weight = job->weight();
    load.cost_per_step = config_.measured_cost ? job->cost_per_step() : 0.0;
    load.remaining = job->remaining_steps();
    load.owner = job->owner();
    in.jobs.push_back(load);
  }
  const CyclePlan plan = scheduler_.plan_cycle(in);
  placement_log_.push_back("cycle=" + std::to_string(in.cycle) + " " +
                           plan.to_string());

  std::uint64_t granted = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i]->set_owner(plan.owners[i]);
    granted += plan.steps[i];
  }

  // One pool task per tenant; the plan's owners are the initial deal.
  // Each task touches exactly one job, so tasks share nothing.
  const ws::PoolStats stats = pool_.run_placed(
      jobs.size(), std::span<const int>(plan.owners),
      [&](std::size_t t, int /*worker*/) {
        obs::Phase phase(obs::kPhaseStep, nullptr, lane_of(*jobs[t]), nullptr);
        jobs[t]->advance(plan.steps[t]);
      },
      config_.allow_steal);

  cycles_counter_->add(1);
  steps_counter_->add(granted);
  steals_counter_->add(stats.steals);
}

void Server::finish_job(Job& job, std::ostream& out) {
  const JobResult& r = job.result();
  const char* status = job.state() == JobState::kDone
                           ? (r.ok ? "pass" : "fail")
                           : (job.state() == JobState::kCancelled ? "cancelled"
                                                                  : "fail");
  if (job.state() == JobState::kDone) {
    out << "svc: job " << job.name() << (r.ok ? " VERIFIED" : " VERIFICATION FAILED")
        << " — " << r.final_particles << " particles, " << job.steps_done()
        << " steps, " << util::Table::fmt(job.seconds(), 3) << " s";
    if (r.recoveries > 0) out << ", " << r.recoveries << " recoveries";
    out << '\n';
    if (!r.ok) all_ok_ = false;
  } else if (job.state() == JobState::kCancelled) {
    out << "svc: job " << job.name() << " CANCELLED after " << job.steps_done()
        << " steps\n";
  } else {
    out << "svc: job " << job.name() << " FAILED — " << job.failure() << '\n';
    all_ok_ = false;
  }
  out << util::ResultLine("serve")
             .add("job", job.name())
             .add("status", status)
             .add("particles", r.final_particles)
             .add("seconds", job.seconds())
             .add("checksum", r.id_checksum)
             .add("expected", r.expected_checksum)
             .add("steps", static_cast<std::uint64_t>(job.steps_done()))
             .add("cycles", static_cast<std::uint64_t>(job.cycles()))
             .add("recoveries", static_cast<std::uint64_t>(r.recoveries))
             .str()
      << '\n';

  if (!config_.metrics_dir.empty()) {
    const std::string path =
        config_.metrics_dir + "/job-" + job.name() + ".json";
    if (!obs::write_metrics_json(path, "picprk-serve", job.config_json(),
                                 job.registry(), job.samples())) {
      std::cerr << "svc: cannot write metrics to " << path << '\n';
    }
  }
}

void Server::report_finished(std::ostream& out) {
  for (Job* job : table_.all()) {
    if (job->state() == JobState::kRunning) continue;
    if (std::find(reported_.begin(), reported_.end(), job->id()) != reported_.end()) {
      continue;
    }
    reported_.push_back(job->id());
    finish_job(*job, out);
  }
}

void Server::drain(std::ostream& out) {
  for (;;) {
    const std::vector<Job*> jobs = table_.active();
    if (jobs.empty()) break;
    run_cycle(jobs);
    report_finished(out);  // tenants report the moment they finish
  }
  report_finished(out);  // cancelled-before-any-cycle jobs

  // Aggregate server summary: one row per tenant ever admitted.
  util::Table table({"job", "status", "steps", "cycles", "particles", "seconds",
                     "ms/step", "recoveries", "migrations"});
  double total_seconds = 0.0;
  std::uint64_t total_steps = 0;
  for (Job* job : table_.all()) {
    const JobResult& r = job->result();
    table.add_row({job->name(),
                   job->state() == JobState::kDone
                       ? (r.ok ? "pass" : "fail")
                       : to_string(job->state()),
                   std::to_string(job->steps_done()), std::to_string(job->cycles()),
                   std::to_string(r.final_particles),
                   util::Table::fmt(job->seconds(), 3),
                   util::Table::fmt(job->cost_per_step() * 1e3, 3),
                   std::to_string(r.recoveries), std::to_string(r.migrations)});
    total_seconds += job->seconds();
    total_steps += job->steps_done();
  }
  table.print(out);
  out << "svc: drained " << table_.all().size() << " jobs in " << cycle_
      << " cycles — " << total_steps << " job-steps, "
      << util::Table::fmt(total_seconds, 3) << " job-seconds, "
      << steals_counter_->value() << " steals\n";

  if (!config_.trace_path.empty() && !trace_.write_json(config_.trace_path)) {
    std::cerr << "svc: cannot write trace to " << config_.trace_path << '\n';
  }
  if (!config_.metrics_dir.empty()) {
    util::JsonObject config;
    config.add("workers", static_cast<std::int64_t>(pool_.workers()));
    config.add("scheduler", scheduler_.spec());
    config.add("quantum", static_cast<std::int64_t>(config_.quantum));
    config.add("queue_capacity",
               static_cast<std::uint64_t>(table_.capacity()));
    const std::string path = config_.metrics_dir + "/server.json";
    if (!obs::write_metrics_json(path, "picprk-serve", config, registry_, {})) {
      std::cerr << "svc: cannot write metrics to " << path << '\n';
    }
  }
}

int Server::run_commands(std::istream& in, std::ostream& out) {
  std::string line;
  bool drained = false;
  while (std::getline(in, line)) {
    std::optional<Command> cmd;
    try {
      cmd = parse_command(line);
    } catch (const std::exception& e) {
      std::cerr << "svc: " << e.what() << '\n';
      return 2;
    }
    if (!cmd) continue;
    drained = false;
    switch (cmd->kind) {
      case Command::Kind::kSubmit:
        try {
          Job& job = submit(std::move(cmd->spec));
          out << "svc: admitted job " << job.name() << " (id " << job.id()
              << ", " << job.spec().run.init.total_particles << " particles, "
              << job.spec().run.steps << " steps)\n";
        } catch (const AdmissionError& e) {
          // Loud backpressure: the rejection is part of the protocol,
          // not a server failure.
          std::cerr << e.what() << '\n';
          out << util::ResultLine("serve")
                     .add("job", e.job())
                     .add("status", "rejected")
                     .str()
              << '\n';
        } catch (const std::exception& e) {
          std::cerr << "svc: " << e.what() << '\n';
          return 2;
        }
        break;
      case Command::Kind::kCancel:
        if (!cancel(cmd->target)) {
          std::cerr << "svc: no running job named '" << cmd->target << "'\n";
        }
        break;
      case Command::Kind::kDrain:
        drain(out);
        drained = true;
        break;
    }
  }
  if (!drained) drain(out);  // EOF implies a final drain
  return all_ok_ ? 0 : 1;
}

}  // namespace picprk::svc
