// The cross-job scheduler: jobs as super-VPs. Each cycle it decides
// (1) how many supersteps every tenant gets — weighted fair share:
// steps = quantum × weight, clipped to what the job still needs — and
// (2) which pool worker each tenant's quantum is dealt to, by feeding
// the jobs' measured step costs through the ordinary lb::Strategy
// registry as a placement problem (part = job, load = cost_per_step ×
// granted steps). The strategies are reused unmodified; everything that
// made them assessable for VPs — purity, determinism, the conformance
// suite — carries over to tenants for free.
//
// plan_cycle is PURE: a function of CycleInput alone, no clocks, no
// RNG, no internal mutable state. Two server instances fed identical
// telemetry therefore replay identical placement plans bit for bit —
// the same contract (and the same lint rule) the lb layer already
// enforces for VP placement.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lb/strategy.hpp"

namespace picprk::svc {

/// Telemetry of one admissible job at a cycle boundary.
struct JobLoad {
  int job = 0;                  ///< tenant id — the part id of the decision
  double weight = 1.0;          ///< fair-share weight
  double cost_per_step = 0.0;   ///< EWMA measured seconds (0 = unmeasured yet)
  std::uint32_t remaining = 0;  ///< steps the job still needs
  int owner = 0;                ///< worker the job ran on last cycle
};

struct CycleInput {
  std::uint32_t cycle = 0;
  std::uint32_t quantum = 8;  ///< steps granted per cycle at weight 1
  int workers = 1;            ///< shared-pool worker count
  std::vector<JobLoad> jobs;  ///< admission order (deterministic)
};

struct CyclePlan {
  std::vector<std::uint32_t> steps;  ///< granted steps, same order as input
  std::vector<int> owners;           ///< target worker, same order as input
  /// Canonical text form — the unit of the bit-for-bit replay check and
  /// of the server's placement log.
  std::string to_string() const;
};

class Scheduler {
 public:
  /// `strategy_spec` is an lb registry spec ("greedy", "rcb",
  /// "adaptive:inner=rcb", ...). Throws std::invalid_argument for
  /// unknown names and for bounds-only strategies (tenant scheduling is
  /// a placement problem).
  explicit Scheduler(const std::string& strategy_spec);

  const std::string& spec() const { return spec_; }

  /// Pure decide; see the header comment. Input order is preserved.
  CyclePlan plan_cycle(const CycleInput& in) const;

 private:
  std::string spec_;
  std::unique_ptr<lb::Strategy> strategy_;
};

}  // namespace picprk::svc
