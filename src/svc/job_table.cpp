#include "svc/job_table.hpp"

namespace picprk::svc {

JobTable::JobTable(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

Job& JobTable::submit(JobSpec spec) {
  if (active_count() >= capacity_) throw AdmissionError(spec.name, capacity_);
  for (const auto& job : jobs_) {
    if (job->state() == JobState::kRunning && job->name() == spec.name) {
      throw std::invalid_argument("svc: job '" + spec.name + "' is already running");
    }
  }
  jobs_.push_back(std::make_unique<Job>(next_id_++, std::move(spec)));
  return *jobs_.back();
}

Job* JobTable::find(const std::string& name) {
  // Newest first, so a resubmitted name resolves to the live instance.
  for (auto it = jobs_.rbegin(); it != jobs_.rend(); ++it) {
    if ((*it)->name() == name) return it->get();
  }
  return nullptr;
}

std::vector<Job*> JobTable::active() {
  std::vector<Job*> out;
  for (const auto& job : jobs_) {
    if (job->state() == JobState::kRunning) out.push_back(job.get());
  }
  return out;
}

std::vector<Job*> JobTable::all() {
  std::vector<Job*> out;
  out.reserve(jobs_.size());
  for (const auto& job : jobs_) out.push_back(job.get());
  return out;
}

std::size_t JobTable::active_count() const {
  std::size_t n = 0;
  for (const auto& job : jobs_) {
    if (job->state() == JobState::kRunning) ++n;
  }
  return n;
}

}  // namespace picprk::svc
