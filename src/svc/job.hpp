// One tenant of the job server (docs/SERVICE.md): a complete kernel
// instance — its own vpr runtime over par::PicVp subdomains, its own
// obs::Registry, its own fault injector and checkpoint store — wrapped
// behind an advance(n)/finalize lifecycle the server can drive in
// quanta. Nothing in here touches process-global state: two Jobs are as
// isolated as two picprk processes, which is what makes the per-tenant
// metrics documents disjoint and a fault drill in one tenant invisible
// to its neighbours.
//
// Threading contract: a Job is externally synchronized. The server runs
// at most one advance() per job per cycle (one pool task), and the
// cycle barrier orders successive tasks, so no Job member needs a lock.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ft/checkpoint.hpp"
#include "ft/fault.hpp"
#include "obs/registry.hpp"
#include "obs/sinks.hpp"
#include "par/pic_vp.hpp"
#include "svc/spec.hpp"
#include "util/report.hpp"
#include "vpr/runtime.hpp"

namespace picprk::svc {

enum class JobState { kRunning, kDone, kFailed, kCancelled };

const char* to_string(JobState state);

/// Final record of one finished tenant, mirroring the fields of the
/// single-run RESULT line so harnesses parse both the same way.
struct JobResult {
  bool ok = false;
  std::uint64_t final_particles = 0;
  std::uint64_t id_checksum = 0;
  std::uint64_t expected_checksum = 0;
  std::uint32_t recoveries = 0;
  std::uint64_t migrations = 0;
};

class Job {
 public:
  /// Builds the kernel instance: VPs populated, instruments registered,
  /// fault/checkpoint machinery attached. `id` is the server-assigned
  /// tenant id (the Chrome-trace pid and the part id of cross-job
  /// placement decisions).
  Job(int id, JobSpec spec);

  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  int id() const { return id_; }
  const std::string& name() const { return spec_.name; }
  const JobSpec& spec() const { return spec_; }
  JobState state() const { return state_; }
  const std::string& failure() const { return failure_; }

  std::uint32_t steps_done() const { return steps_done_; }
  std::uint32_t remaining_steps() const {
    return state_ == JobState::kRunning ? spec_.run.steps - steps_done_ : 0;
  }
  /// Cycles this job received a quantum in — the fair-share observable.
  std::uint32_t cycles() const { return cycles_; }

  /// EWMA of measured wall seconds per superstep (0 until first quantum)
  /// — the telemetry the cross-job scheduler places on.
  double cost_per_step() const { return cost_per_step_; }
  /// Pool seconds consumed so far.
  double seconds() const { return seconds_; }

  double weight() const { return spec_.weight; }
  int owner() const { return owner_; }
  void set_owner(int worker) { owner_ = worker; }

  /// Runs up to `n` supersteps (fewer when the job completes first),
  /// checkpointing on the configured cadence and rolling back through
  /// the job's own store when its fault drill kills a VP. Transitions
  /// to kDone (with verification) or kFailed; never throws.
  void advance(std::uint32_t n);

  /// Marks a running job cancelled; its state is dropped undrained.
  void cancel();

  /// Valid once state() != kRunning.
  const JobResult& result() const { return result_; }

  obs::Registry& registry() { return registry_; }
  const obs::Registry& registry() const { return registry_; }
  const std::vector<obs::StepSample>& samples() const { return samples_; }

  /// The spec's knobs as the "config" object of this tenant's metrics
  /// document, so archived per-job docs are self-describing.
  util::JsonObject config_json() const;

 private:
  void checkpoint_all(std::uint32_t step);
  /// Rollback to the newest consistent checkpoint; false = unrecoverable.
  bool recover();
  void sample(std::uint32_t step);
  void finalize();

  int id_;
  JobSpec spec_;
  JobState state_ = JobState::kRunning;
  std::string failure_;

  // Per-tenant instance state — no process-global anywhere.
  obs::Registry registry_;
  std::unique_ptr<ft::FaultInjector> injector_;
  std::unique_ptr<ft::CheckpointStore> store_;
  std::shared_ptr<const par::PicVpShared> shared_;
  std::unique_ptr<vpr::Runtime> runtime_;
  obs::Histogram* step_hist_ = nullptr;  ///< svc/step_seconds (p99 source)

  std::uint32_t steps_done_ = 0;
  std::uint32_t cycles_ = 0;
  std::uint32_t recoveries_ = 0;
  double cost_per_step_ = 0.0;
  double seconds_ = 0.0;
  int owner_ = 0;
  std::vector<obs::StepSample> samples_;
  JobResult result_;
};

}  // namespace picprk::svc
