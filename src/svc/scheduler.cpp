#include "svc/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "lb/registry.hpp"
#include "util/assert.hpp"

namespace picprk::svc {

std::string CyclePlan::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (i > 0) out += ' ';
    out += "steps=" + std::to_string(steps[i]) +
           ",owner=" + std::to_string(owners[i]);
  }
  return out;
}

Scheduler::Scheduler(const std::string& strategy_spec)
    : spec_(strategy_spec.empty() ? "greedy" : strategy_spec) {
  const lb::Descriptor desc = lb::descriptor_of(lb::parse_spec(spec_).name);
  if (!desc.placement) {
    throw std::invalid_argument(
        "svc: scheduler strategy '" + desc.name +
        "' only rebalances bounds; tenant scheduling needs a "
        "placement-capable strategy (see picprk --balancer list)");
  }
  strategy_ = lb::make_strategy(spec_);
}

CyclePlan Scheduler::plan_cycle(const CycleInput& in) const {
  PICPRK_EXPECTS(in.quantum >= 1);
  PICPRK_EXPECTS(in.workers >= 1);
  CyclePlan plan;
  plan.steps.reserve(in.jobs.size());

  // Weighted fair share: a weight-w tenant advances w× as many steps
  // per cycle as a weight-1 tenant. Every live job gets at least one
  // step (no starvation), and never more than it still needs.
  for (const JobLoad& job : in.jobs) {
    const auto share = static_cast<std::uint32_t>(std::max<long long>(
        1, std::llround(static_cast<double>(in.quantum) * job.weight)));
    plan.steps.push_back(std::min(share, job.remaining));
  }

  // Placement: the jobs are the parts. Load = expected compute this
  // cycle (measured cost × granted steps); an unmeasured job counts its
  // steps alone, so first-cycle placement is uniform-cost and still
  // deterministic.
  lb::PlacementInput input;
  input.metric = lb::LoadMetric::kComputeSeconds;
  input.step = in.cycle;
  input.interval_steps = in.quantum;
  input.workers = in.workers;
  input.parts.reserve(in.jobs.size());
  for (std::size_t i = 0; i < in.jobs.size(); ++i) {
    lb::PartLoad part;
    part.part = in.jobs[i].job;
    const double cost =
        in.jobs[i].cost_per_step > 0.0 ? in.jobs[i].cost_per_step : 1.0;
    part.load = cost * static_cast<double>(plan.steps[i]);
    part.owner = std::min(in.jobs[i].owner, in.workers - 1);
    input.parts.push_back(std::move(part));
  }
  plan.owners = strategy_->rebalance_placement(input);
  PICPRK_ASSERT(plan.owners.size() == in.jobs.size());
  for (int owner : plan.owners) {
    PICPRK_ASSERT_MSG(owner >= 0 && owner < in.workers,
                      "svc scheduler: strategy produced an invalid worker");
  }
  return plan;
}

}  // namespace picprk::svc
