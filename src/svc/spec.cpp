#include "svc/spec.hpp"

#include <algorithm>
#include <stdexcept>

#include "lb/registry.hpp"

namespace picprk::svc {

namespace {

std::int64_t to_int(const std::string& job, const std::string& key,
                    const std::string& value) {
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("job " + job + ": " + key + "=" + value +
                                " is not an integer");
  }
}

double to_double(const std::string& job, const std::string& key,
                 const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("job " + job + ": " + key + "=" + value +
                                " is not a number");
  }
}

/// Strips leading/trailing spaces and tabs.
std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

JobSpec parse_job_spec(const std::string& text) {
  const lb::ParsedSpec parsed = lb::parse_spec(text);
  JobSpec spec;
  spec.name = parsed.name;
  par::RunConfig& run = spec.run;
  run.workers = 1;  // the job itself is the unit the server schedules
  run.overdecomposition = 4;
  run.lb.every = 8;
  run.sample_every = 8;
  run.steps = 64;

  std::int64_t cells = 64;
  std::int64_t particles = 20000;
  std::string dist = "uniform";
  double r = 0.99, alpha = 1.0, beta = 1.0;
  std::int64_t px0 = 0, px1 = 32, py0 = 0, py1 = 32;

  for (const auto& [key, value] : parsed.options) {
    if (key == "cells") {
      cells = to_int(spec.name, key, value);
    } else if (key == "particles") {
      particles = to_int(spec.name, key, value);
    } else if (key == "steps") {
      run.steps = static_cast<std::uint32_t>(to_int(spec.name, key, value));
    } else if (key == "dist") {
      dist = value;
    } else if (key == "r") {
      r = to_double(spec.name, key, value);
    } else if (key == "alpha") {
      alpha = to_double(spec.name, key, value);
    } else if (key == "beta") {
      beta = to_double(spec.name, key, value);
    } else if (key == "patch_x0") {
      px0 = to_int(spec.name, key, value);
    } else if (key == "patch_x1") {
      px1 = to_int(spec.name, key, value);
    } else if (key == "patch_y0") {
      py0 = to_int(spec.name, key, value);
    } else if (key == "patch_y1") {
      py1 = to_int(spec.name, key, value);
    } else if (key == "k") {
      run.init.k = static_cast<std::int32_t>(to_int(spec.name, key, value));
    } else if (key == "m") {
      run.init.m = static_cast<std::int32_t>(to_int(spec.name, key, value));
    } else if (key == "seed") {
      run.init.seed = static_cast<std::uint64_t>(to_int(spec.name, key, value));
    } else if (key == "rotate90") {
      run.init.rotate90 = to_int(spec.name, key, value) != 0;
    } else if (key == "d") {
      run.overdecomposition = static_cast<int>(to_int(spec.name, key, value));
    } else if (key == "balancer") {
      // '/'-encoded nested options: adaptive/inner=rcb -> adaptive:inner=rcb
      std::string lbspec = value;
      const auto slash = lbspec.find('/');
      if (slash != std::string::npos) {
        lbspec[slash] = ':';
        std::replace(lbspec.begin() + static_cast<std::ptrdiff_t>(slash),
                     lbspec.end(), '/', ',');
      }
      run.lb.strategy = lbspec;
    } else if (key == "lb_every") {
      run.lb.every = static_cast<std::uint32_t>(to_int(spec.name, key, value));
    } else if (key == "measured") {
      run.lb.measured = to_int(spec.name, key, value) != 0;
    } else if (key == "sample_every") {
      run.sample_every = static_cast<std::uint32_t>(to_int(spec.name, key, value));
    } else if (key == "weight") {
      spec.weight = to_double(spec.name, key, value);
    } else if (key == "kill_vp") {
      spec.kill_vp = static_cast<int>(to_int(spec.name, key, value));
    } else if (key == "kill_step") {
      spec.kill_step = static_cast<std::uint32_t>(to_int(spec.name, key, value));
    } else if (key == "checkpoint_every") {
      spec.checkpoint_every =
          static_cast<std::uint32_t>(to_int(spec.name, key, value));
    } else {
      throw std::invalid_argument(
          "job " + spec.name + ": unknown key '" + key +
          "' (cells particles steps dist r alpha beta patch_x0..patch_y1 k m "
          "seed rotate90 d balancer lb_every measured sample_every weight "
          "kill_vp kill_step checkpoint_every)");
    }
  }

  if (cells < 2) {
    throw std::invalid_argument("job " + spec.name + ": cells must be >= 2");
  }
  if (run.steps == 0) {
    throw std::invalid_argument("job " + spec.name + ": steps must be >= 1");
  }
  if (run.overdecomposition < 1) {
    throw std::invalid_argument("job " + spec.name + ": d must be >= 1");
  }
  if (spec.weight <= 0.0) {
    throw std::invalid_argument("job " + spec.name + ": weight must be > 0");
  }
  if (spec.kill_vp >= 0 && spec.checkpoint_every == 0) {
    throw std::invalid_argument(
        "job " + spec.name +
        ": kill_vp requires checkpoint_every > 0 — a killed VP can only "
        "be restored from the job's own checkpoint store");
  }
  if (spec.kill_vp >= run.overdecomposition) {
    throw std::invalid_argument("job " + spec.name + ": kill_vp " +
                                std::to_string(spec.kill_vp) +
                                " is outside the VP range [0, d)");
  }

  run.init.grid = pic::GridSpec(cells, 1.0);
  run.init.total_particles = static_cast<std::uint64_t>(particles);
  if (dist == "uniform") {
    run.init.distribution = pic::Uniform{};
  } else if (dist == "geometric") {
    run.init.distribution = pic::Geometric{r};
  } else if (dist == "sinusoidal") {
    run.init.distribution = pic::Sinusoidal{};
  } else if (dist == "linear") {
    run.init.distribution = pic::Linear{alpha, beta};
  } else if (dist == "patch") {
    run.init.distribution = pic::Patch{
        pic::CellRegion{px0, std::min(px1, cells), py0, std::min(py1, cells)}};
  } else {
    throw std::invalid_argument(
        "job " + spec.name + ": unknown dist '" + dist +
        "' (uniform|geometric|sinusoidal|linear|patch)");
  }
  return spec;
}

std::optional<Command> parse_command(const std::string& line) {
  const std::string text = trim(line);
  if (text.empty() || text[0] == '#') return std::nullopt;

  const auto space = text.find_first_of(" \t");
  const std::string verb = text.substr(0, space);
  const std::string rest =
      space == std::string::npos ? std::string() : trim(text.substr(space + 1));

  Command cmd;
  if (verb == "submit") {
    if (rest.empty()) {
      throw std::invalid_argument("submit needs a job spec: submit name:key=val,...");
    }
    cmd.kind = Command::Kind::kSubmit;
    cmd.spec = parse_job_spec(rest);
    return cmd;
  }
  if (verb == "cancel") {
    if (rest.empty()) throw std::invalid_argument("cancel needs a job name");
    cmd.kind = Command::Kind::kCancel;
    cmd.target = rest;
    return cmd;
  }
  if (verb == "drain") {
    if (!rest.empty()) throw std::invalid_argument("drain takes no argument");
    cmd.kind = Command::Kind::kDrain;
    return cmd;
  }
  throw std::invalid_argument("unknown serve command '" + verb +
                              "' (submit|cancel|drain)");
}

}  // namespace picprk::svc
