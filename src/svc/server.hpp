// The multi-tenant job server (docs/SERVICE.md): many kernels, one
// shared runtime. N admitted jobs — independent distribution, size,
// strategy, seed — multiplex onto a single ws::WorkStealingPool. Each
// drain cycle the Scheduler grants every live tenant a weighted-fair
// quantum of supersteps and places the quanta on pool workers through
// an lb::Strategy (jobs as super-VPs, measured step cost as load); the
// pool executes the placement via run_placed(), with stealing smoothing
// whatever the plan mispredicted.
//
// Observability is per-tenant: every job owns its registry and emits
// its own picprk-bench-v1 metrics document; the server owns one
// Chrome trace with a lane per job (pid = job id, so tenants appear as
// separate processes in the viewer) plus an aggregate summary table on
// drain.
//
// The control path (submit/cancel/drain/run_commands) is single-client:
// one thread drives the server. Inside a cycle the pool's workers each
// advance disjoint jobs; the cycle barrier orders everything else.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/phase.hpp"
#include "obs/registry.hpp"
#include "svc/job_table.hpp"
#include "svc/scheduler.hpp"
#include "ws/pool.hpp"

namespace picprk::svc {

struct ServerConfig {
  /// Shared-pool worker threads — the server's total compute.
  int workers = 4;
  /// Cross-job placement strategy (lb registry spec).
  std::string scheduler = "greedy";
  /// Supersteps granted per cycle at weight 1.
  std::uint32_t quantum = 8;
  /// Admission bound: live jobs beyond this are rejected loudly.
  std::size_t queue_capacity = 16;
  /// Directory for per-job metrics documents, "job-<name>.json" plus a
  /// "server.json" aggregate (empty = no metrics files).
  std::string metrics_dir;
  /// Server Chrome trace, one lane per job (empty = no trace file).
  std::string trace_path;
  /// Let idle pool workers steal beyond the planned placement.
  bool allow_steal = true;
  /// Feed measured per-job step cost into placement. Off = uniform cost
  /// assumption, which makes whole-server placement logs reproducible
  /// run to run (the replay tests pin this).
  bool measured_cost = true;
};

class Server {
 public:
  explicit Server(ServerConfig config);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admits a job. Throws AdmissionError beyond capacity (backpressure)
  /// and std::invalid_argument on duplicate live names.
  Job& submit(JobSpec spec);

  /// Cancels a running job; false when no such job. The cancellation is
  /// reported (RESULT line) on the next drain.
  bool cancel(const std::string& name);

  /// Runs scheduler cycles on the shared pool until no job is running;
  /// prints one human line + one RESULT line per finished job and the
  /// aggregate summary table, then flushes metrics/trace files.
  void drain(std::ostream& out);

  /// Executes the line-oriented command stream (submit/cancel/drain;
  /// '#' comments). EOF implies a final drain. Returns the process exit
  /// code: 0 when every non-cancelled job verified, 1 otherwise, 2 on a
  /// malformed command (reported on stderr, stream abandoned).
  int run_commands(std::istream& in, std::ostream& out);

  /// Canonical placement-plan log, one entry per cycle — the replay
  /// observable: two servers fed identical telemetry log identically.
  const std::vector<std::string>& placement_log() const { return placement_log_; }

  JobTable& table() { return table_; }
  const obs::Registry& registry() const { return registry_; }
  std::uint32_t cycles() const { return cycle_; }

 private:
  void run_cycle(const std::vector<Job*>& jobs);
  void report_finished(std::ostream& out);
  void finish_job(Job& job, std::ostream& out);
  obs::TraceLane* lane_of(const Job& job);

  ServerConfig config_;
  obs::Registry registry_;  ///< server-level aggregates (svc/ namespace)
  obs::Trace trace_;        ///< one lane per tenant, pid = job id
  ws::WorkStealingPool pool_;
  JobTable table_;
  Scheduler scheduler_;

  std::vector<std::string> placement_log_;
  std::vector<int> reported_;  ///< job ids already reported
  std::uint32_t cycle_ = 0;
  bool all_ok_ = true;
  obs::Counter* cycles_counter_ = nullptr;
  obs::Counter* steps_counter_ = nullptr;
  obs::Counter* steals_counter_ = nullptr;
  obs::Counter* rejected_counter_ = nullptr;
};

}  // namespace picprk::svc
