// The virtual processor abstraction of the vpr runtime — the stand-in
// for AMPI's user-level MPI processes (paper §IV-C): the problem is
// over-decomposed into many VPs multiplexed on few workers; the runtime
// measures per-VP load and migrates VPs (via PUP) to rebalance.
//
// Execution model: message-driven supersteps. Each global step the
// runtime calls step() on every VP (which does local work and enqueues
// messages to other VPs through its context), then delivers all messages
// via deliver(). This is the BSP-shaped slice of AMPI that the PIC PRK
// exercises: per-iteration particle exchange between neighbouring
// subdomains with a global step boundary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "vpr/pup.hpp"

namespace picprk::vpr {

/// A message in flight between two VPs.
struct VpMessage {
  int src = 0;
  int dst = 0;
  std::vector<std::byte> payload;
};

/// Per-step interface handed to VirtualProcessor::step.
class VpContext {
 public:
  virtual ~VpContext() = default;

  /// Enqueues a message to another VP; delivered before the next step.
  virtual void send(int dst_vp, std::vector<std::byte> payload) = 0;

  /// Current global step index.
  virtual std::uint32_t step() const = 0;

  /// Total number of VPs.
  virtual int vps() const = 0;
};

class VirtualProcessor {
 public:
  explicit VirtualProcessor(int id) : id_(id) {}
  virtual ~VirtualProcessor() = default;

  VirtualProcessor(const VirtualProcessor&) = delete;
  VirtualProcessor& operator=(const VirtualProcessor&) = delete;

  int id() const { return id_; }

  /// Local work for one superstep; outgoing messages go through `ctx`.
  virtual void step(VpContext& ctx) = 0;

  /// Receives one message (delivery phase of the superstep).
  virtual void deliver(int src_vp, std::vector<std::byte> payload) = 0;

  /// Abstract load of this VP for the balancer (e.g. particle count).
  /// The runtime can be configured to use measured wall time instead.
  virtual double load() const = 0;

  /// Locality hint: ids of VPs this one communicates with (adjacent
  /// subdomains). Consumed by hint-aware balancers (CompactLb); the
  /// default — no hints — reproduces plain AMPI behaviour.
  virtual std::vector<int> neighbor_vps() const { return {}; }

  /// Serializes/deserializes the complete VP state (migration).
  virtual void pup(Pup& p) = 0;

 private:
  int id_;
};

}  // namespace picprk::vpr
