// The vpr runtime: multiplexes V virtual processors onto P worker
// threads in step-synchronous supersteps, measures per-VP load, and at a
// configurable interval F invokes a load balancer and migrates VPs by
// PUP pack/unpack — the execution model of Adaptive MPI that the paper's
// "ampi" implementation relies on (§IV-C), with F and the degree of
// over-decomposition d = V/P as the tunables of Figure 5.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "lb/strategy.hpp"
#include "obs/phase.hpp"
#include "vpr/vp.hpp"

namespace picprk::vpr {

struct RuntimeConfig {
  int workers = 2;
  int vps = 8;
  /// Invoke the load balancer every `lb_interval` steps (0 = never) —
  /// the paper's F.
  std::uint32_t lb_interval = 0;
  /// lb registry spec, "name[:key=val,...]" — any placement-capable
  /// strategy ("greedy", "refine", "diffusion", "compact", "rotate",
  /// "null", "adaptive", ...). Construction rejects bounds-only specs.
  std::string balancer = "greedy";
  /// Use measured wall time per VP instead of VirtualProcessor::load().
  /// Abstract loads are the default: they are deterministic and match
  /// the PRK's per-particle cost model.
  bool use_measured_load = false;
  /// Telemetry hooks (obs subsystem): when active the runtime registers
  /// its counters/histograms at construction and gives every VP its own
  /// trace lane (one timeline row per VP, so migrations are visible as a
  /// lane going quiet on one worker's schedule). Default: run dark.
  obs::Hooks obs;
};

struct RuntimeStats {
  std::uint32_t steps = 0;
  std::uint64_t messages = 0;
  std::uint64_t message_bytes = 0;
  /// Bytes of messages whose endpoint VPs lived on different workers at
  /// send time — the locality metric behind the paper's strong-scaling
  /// discussion of fragmented subdomains.
  std::uint64_t cross_worker_bytes = 0;
  std::uint64_t lb_invocations = 0;
  std::uint64_t migrations = 0;
  std::uint64_t migrated_bytes = 0;
  double step_seconds = 0.0;  ///< wall time of the superstep loop
  double lb_seconds = 0.0;    ///< wall time inside LB + migration
  /// max/mean worker load sampled just before each LB invocation.
  std::vector<double> imbalance_before_lb;
};

class Runtime {
 public:
  using Factory = std::function<std::unique_ptr<VirtualProcessor>(int vp)>;

  /// Creates the VPs via `factory` and places them blockwise on workers.
  Runtime(RuntimeConfig config, const Factory& factory);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Executes `steps` supersteps (step → deliver → [LB]). May be called
  /// repeatedly; stats accumulate.
  void run(std::uint32_t steps);

  const RuntimeStats& stats() const { return stats_; }
  const RuntimeConfig& config() const { return config_; }

  int worker_of(int vp) const;
  VirtualProcessor& vp(int id);
  int vps() const { return config_.vps; }

  /// Next step run() will execute.
  std::uint32_t current_step() const { return current_step_; }

  /// Rolls the superstep clock back to `step` and discards all pending
  /// (undelivered) messages and partial load measurements — the runtime
  /// half of a checkpoint rollback. The caller is responsible for
  /// restoring VP state (pup_unpack from a checkpoint) afterwards.
  void rewind(std::uint32_t step);

  /// Localized failure recovery (docs/RESILIENCE.md): permanently
  /// retires `worker` from the live set and immediately re-places its
  /// VPs through the balancer's degraded path (fallback: pure
  /// evacuation onto the least-loaded survivor). Subsequent LB rounds
  /// plan over the shrunken live set; the retired worker thread keeps
  /// participating in barriers but runs no VPs. Call between run()
  /// invocations, after restoring VP state. At least one worker must
  /// stay live.
  void retire_worker(int worker);

  /// Workers retired so far, sorted ascending.
  const std::vector<int>& dead_workers() const { return dead_workers_; }
  int live_workers() const {
    return config_.workers - static_cast<int>(dead_workers_.size());
  }

  /// Sequential post-run iteration over all VPs (e.g. for verification).
  template <typename F>
  void for_each_vp(F&& fn) {
    for (auto& vp : vps_) fn(*vp);
  }

 private:
  struct Pool;  ///< persistent worker threads, parked between run() calls

  void step_phase(int worker, std::uint32_t global_step);
  void deliver_phase(int worker);
  void maybe_balance(std::uint32_t global_step);
  void superstep_worker(int worker, std::uint32_t global_step, Pool& pool);
  void route_messages();
  void run_load_balancer(std::uint32_t global_step);
  lb::PlacementInput build_placement_input(std::uint32_t global_step,
                                           std::vector<double>* worker_load,
                                           double* total_measured) const;
  double apply_placement(const lb::PlacementInput& input,
                         const std::vector<int>& remap);

  RuntimeConfig config_;
  Factory factory_;
  std::unique_ptr<lb::Strategy> balancer_;
  std::vector<std::unique_ptr<VirtualProcessor>> vps_;
  std::vector<int> vp_worker_;
  std::vector<int> dead_workers_;  ///< retired workers, sorted ascending
  std::vector<double> vp_measured_seconds_;  ///< since last LB
  // Telemetry handles, registered once at construction (null when
  // config_.obs is inactive). Lanes are per VP; a VP's lane is written
  // only by the worker currently running it, and ownership changes only
  // at LB barriers.
  std::vector<obs::TraceLane*> vp_lanes_;
  obs::Histogram* step_hist_ = nullptr;
  obs::Histogram* deliver_hist_ = nullptr;
  obs::Histogram* lb_hist_ = nullptr;
  obs::Counter* messages_counter_ = nullptr;
  obs::Counter* message_bytes_counter_ = nullptr;
  obs::Counter* cross_worker_bytes_counter_ = nullptr;
  obs::Counter* migrations_counter_ = nullptr;
  obs::Counter* migrated_bytes_counter_ = nullptr;
  obs::Counter* lb_invocations_counter_ = nullptr;
  std::vector<std::vector<VpMessage>> outboxes_;  ///< per worker
  std::vector<std::vector<VpMessage>> inboxes_;   ///< per VP
  RuntimeStats stats_;
  std::uint32_t current_step_ = 0;
  std::unique_ptr<Pool> pool_;
};

}  // namespace picprk::vpr
