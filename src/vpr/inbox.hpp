// Per-VP inbox for incremental (iexchange-style) delivery outside the
// barrier-separated superstep runtime. The async engine (par/async)
// drains the wire while VPs are still computing; a payload produced in
// step s may only reach VP B after B has finished its own step-s
// compute (otherwise B would move the arriving particles a second
// time). StepInbox holds the early arrivals and flushes them at exactly
// that point, keeping the eligibility rule in one place.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "vpr/vp.hpp"

namespace picprk::vpr {

/// Step-stamped holding queue for one VirtualProcessor.
class StepInbox {
 public:
  /// Parks a payload stamped with the sender's step until the owner has
  /// computed that step itself.
  void hold(std::uint32_t step, int src_vp, std::vector<std::byte> payload) {
    held_.push_back(Held{step, src_vp, std::move(payload)});
  }

  /// Delivers every payload stamped `step` to `vp` — call immediately
  /// after vp finishes its step-`step` compute. By the termination
  /// invariant nothing older can still be parked, and nothing newer than
  /// step+1 can exist yet; both are asserted.
  void flush(std::uint32_t step, VirtualProcessor& vp) {
    std::size_t kept = 0;
    for (auto& h : held_) {
      PICPRK_ASSERT_MSG(h.step >= step, "StepInbox: payload missed its delivery step");
      if (h.step == step) {
        vp.deliver(h.src_vp, std::move(h.payload));
      } else {
        held_[kept++] = std::move(h);
      }
    }
    held_.resize(kept);
  }

  bool empty() const { return held_.empty(); }
  std::size_t size() const { return held_.size(); }

 private:
  struct Held {
    std::uint32_t step;
    int src_vp;
    std::vector<std::byte> payload;
  };
  std::vector<Held> held_;
};

}  // namespace picprk::vpr
