#include "vpr/runtime.hpp"

#include <algorithm>
#include <barrier>
#include <stdexcept>
#include <thread>

#include "lb/placement.hpp"
#include "lb/registry.hpp"
#include "util/assert.hpp"
#include "util/first_error.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace picprk::vpr {

namespace {

/// VpContext bound to one worker's outbox for one superstep.
class OutboxContext final : public VpContext {
 public:
  OutboxContext(std::vector<VpMessage>& outbox, int src_vp, std::uint32_t step, int vps)
      : outbox_(outbox), src_(src_vp), step_(step), vps_(vps) {}

  void send(int dst_vp, std::vector<std::byte> payload) override {
    PICPRK_EXPECTS(dst_vp >= 0 && dst_vp < vps_);
    outbox_.push_back(VpMessage{src_, dst_vp, std::move(payload)});
  }

  std::uint32_t step() const override { return step_; }
  int vps() const override { return vps_; }

 private:
  std::vector<VpMessage>& outbox_;
  int src_;
  std::uint32_t step_;
  int vps_;
};

}  // namespace

/// Persistent worker pool: threads are spawned once and parked between
/// run() calls; each run() dispatches a batch of supersteps. Phases
/// within a superstep synchronize on a std::barrier. (The first version
/// of this runtime spawned threads per superstep — measurably wasteful
/// for the 6,000-step runs of the paper's experiments.)
struct Runtime::Pool {
  explicit Pool(Runtime& rt)
      : runtime(rt), barrier(rt.config_.workers) {
    threads.reserve(static_cast<std::size_t>(rt.config_.workers));
    for (int w = 0; w < rt.config_.workers; ++w) {
      threads.emplace_back([this, w] { worker_loop(w); });
    }
  }

  ~Pool() {
    {
      util::LockGuard lock(mutex);
      shutdown = true;
    }
    cv.notify_all();
    for (auto& t : threads) t.join();
  }

  void dispatch(std::uint32_t first_step, std::uint32_t steps) {
    {
      util::LockGuard lock(mutex);
      job_first_step = first_step;
      job_steps = steps;
      done_count = 0;
      ++generation;
    }
    cv.notify_all();
    {
      util::LockGuard lock(mutex);
      while (done_count != runtime.config_.workers) done_cv.wait(mutex);
    }
    error.rethrow_if_any();  // clears, so the pool is reusable after a failure
  }

  void worker_loop(int w) {
    std::uint64_t my_generation = 0;
    for (;;) {
      std::uint32_t first = 0, steps = 0;
      {
        util::LockGuard lock(mutex);
        while (!shutdown && generation <= my_generation) cv.wait(mutex);
        if (shutdown) return;
        my_generation = generation;
        first = job_first_step;
        steps = job_steps;
      }
      for (std::uint32_t s = 0; s < steps; ++s) {
        runtime.superstep_worker(w, first + s, *this);
      }
      {
        util::LockGuard lock(mutex);
        ++done_count;
      }
      done_cv.notify_all();
    }
  }

  Runtime& runtime;
  std::barrier<> barrier;
  std::vector<std::thread> threads;

  util::Mutex mutex;
  util::CondVar cv;       ///< workers wait here for the next job
  util::CondVar done_cv;  ///< dispatch waits here for batch completion
  bool shutdown PICPRK_GUARDED_BY(mutex) = false;
  std::uint64_t generation PICPRK_GUARDED_BY(mutex) = 0;
  std::uint32_t job_first_step PICPRK_GUARDED_BY(mutex) = 0;
  std::uint32_t job_steps PICPRK_GUARDED_BY(mutex) = 0;
  int done_count PICPRK_GUARDED_BY(mutex) = 0;
  util::FirstError error;  ///< first exception thrown inside a superstep
};

Runtime::Runtime(RuntimeConfig config, const Factory& factory)
    : config_(config), factory_(factory) {
  PICPRK_EXPECTS(config_.workers >= 1);
  PICPRK_EXPECTS(config_.vps >= config_.workers);
  balancer_ = lb::make_strategy(config_.balancer);
  if (!balancer_->balances_placement()) {
    throw std::invalid_argument("vpr: strategy '" + balancer_->name() +
                                "' cannot place VPs (bounds-only; use the "
                                "diffusion driver)");
  }
  vps_.reserve(static_cast<std::size_t>(config_.vps));
  vp_worker_.resize(static_cast<std::size_t>(config_.vps));
  vp_measured_seconds_.assign(static_cast<std::size_t>(config_.vps), 0.0);
  inboxes_.resize(static_cast<std::size_t>(config_.vps));
  outboxes_.resize(static_cast<std::size_t>(config_.workers));
  for (int v = 0; v < config_.vps; ++v) {
    vps_.push_back(factory_(v));
    PICPRK_ASSERT_MSG(vps_.back() != nullptr, "vp factory returned null");
    // Blockwise initial placement: contiguous VP ranges per worker, the
    // locality-preserving assignment of paper Figure 4 (left).
    vp_worker_[static_cast<std::size_t>(v)] =
        static_cast<int>((static_cast<std::int64_t>(v) * config_.workers) / config_.vps);
  }
  if (config_.obs.active()) {
    // All telemetry registration happens here, before any superstep runs.
    if (config_.obs.trace != nullptr) {
      vp_lanes_.resize(static_cast<std::size_t>(config_.vps), nullptr);
      for (int v = 0; v < config_.vps; ++v) {
        vp_lanes_[static_cast<std::size_t>(v)] =
            &config_.obs.trace->lane(1, "vpr", v, "vp " + std::to_string(v));
      }
    }
    if (config_.obs.registry != nullptr) {
      obs::Registry& reg = *config_.obs.registry;
      step_hist_ = &reg.register_histogram("vpr/phase_step_seconds", 0.0, 0.05, 100);
      deliver_hist_ =
          &reg.register_histogram("vpr/phase_deliver_seconds", 0.0, 0.05, 100);
      lb_hist_ = &reg.register_histogram("vpr/phase_lb_seconds", 0.0, 0.05, 100);
      messages_counter_ = &reg.register_counter("vpr/messages");
      message_bytes_counter_ = &reg.register_counter("vpr/message_bytes");
      cross_worker_bytes_counter_ = &reg.register_counter("vpr/cross_worker_bytes");
      migrations_counter_ = &reg.register_counter("vpr/migrations");
      migrated_bytes_counter_ = &reg.register_counter("vpr/migrated_bytes");
      lb_invocations_counter_ = &reg.register_counter("vpr/lb_invocations");
    }
  }
  if (config_.workers > 1) pool_ = std::make_unique<Pool>(*this);
}

Runtime::~Runtime() = default;

int Runtime::worker_of(int vp) const {
  PICPRK_EXPECTS(vp >= 0 && vp < config_.vps);
  return vp_worker_[static_cast<std::size_t>(vp)];
}

VirtualProcessor& Runtime::vp(int id) {
  PICPRK_EXPECTS(id >= 0 && id < config_.vps);
  return *vps_[static_cast<std::size_t>(id)];
}

void Runtime::rewind(std::uint32_t step) {
  PICPRK_EXPECTS(step <= current_step_);
  current_step_ = step;
  for (auto& inbox : inboxes_) inbox.clear();
  for (auto& outbox : outboxes_) outbox.clear();
  std::fill(vp_measured_seconds_.begin(), vp_measured_seconds_.end(), 0.0);
}

void Runtime::run(std::uint32_t steps) {
  util::Timer wall;
  if (config_.workers == 1) {
    // Inline path: no pool, no barriers.
    for (std::uint32_t s = 0; s < steps; ++s) {
      step_phase(0, current_step_);
      route_messages();
      deliver_phase(0);
      maybe_balance(current_step_);
      ++current_step_;
      ++stats_.steps;
    }
  } else {
    pool_->dispatch(current_step_, steps);
    current_step_ += steps;
    stats_.steps += steps;
  }
  stats_.step_seconds += wall.elapsed();
}

void Runtime::step_phase(int w, std::uint32_t global_step) {
  auto& outbox = outboxes_[static_cast<std::size_t>(w)];
  for (int v = 0; v < config_.vps; ++v) {
    if (vp_worker_[static_cast<std::size_t>(v)] != w) continue;
    OutboxContext ctx(outbox, v, global_step, config_.vps);
    // The Phase accumulates into the measured-load vector the balancer
    // consumes — the telemetry and LB input share one clock read.
    obs::Phase phase(obs::kPhaseStep, &vp_measured_seconds_[static_cast<std::size_t>(v)],
                     vp_lanes_.empty() ? nullptr : vp_lanes_[static_cast<std::size_t>(v)],
                     step_hist_);
    vps_[static_cast<std::size_t>(v)]->step(ctx);
  }
}

void Runtime::deliver_phase(int w) {
  for (int v = 0; v < config_.vps; ++v) {
    if (vp_worker_[static_cast<std::size_t>(v)] != w) continue;
    auto& inbox = inboxes_[static_cast<std::size_t>(v)];
    if (inbox.empty()) continue;
    obs::Phase phase(obs::kPhaseDeliver, nullptr,
                     vp_lanes_.empty() ? nullptr : vp_lanes_[static_cast<std::size_t>(v)],
                     deliver_hist_);
    for (auto& msg : inbox) {
      vps_[static_cast<std::size_t>(v)]->deliver(msg.src, std::move(msg.payload));
    }
    inbox.clear();
  }
}

void Runtime::maybe_balance(std::uint32_t global_step) {
  if (config_.lb_interval > 0 && global_step > 0 &&
      global_step % config_.lb_interval == 0) {
    run_load_balancer(global_step);
  }
}

void Runtime::superstep_worker(int w, std::uint32_t global_step, Pool& pool) {
  auto guarded = [&](auto&& fn) {
    if (pool.error.failed()) return;
    try {
      fn();
    } catch (...) {
      pool.error.record_current();
    }
  };

  guarded([&] { step_phase(w, global_step); });
  pool.barrier.arrive_and_wait();
  if (w == 0) guarded([&] { route_messages(); });
  pool.barrier.arrive_and_wait();
  guarded([&] { deliver_phase(w); });
  pool.barrier.arrive_and_wait();
  if (w == 0) guarded([&] { maybe_balance(global_step); });
  pool.barrier.arrive_and_wait();
}

void Runtime::route_messages() {
  const std::uint64_t messages_before = stats_.messages;
  const std::uint64_t bytes_before = stats_.message_bytes;
  const std::uint64_t cross_before = stats_.cross_worker_bytes;
  for (auto& outbox : outboxes_) {
    for (auto& msg : outbox) {
      ++stats_.messages;
      stats_.message_bytes += msg.payload.size();
      if (vp_worker_[static_cast<std::size_t>(msg.src)] !=
          vp_worker_[static_cast<std::size_t>(msg.dst)]) {
        stats_.cross_worker_bytes += msg.payload.size();
      }
      inboxes_[static_cast<std::size_t>(msg.dst)].push_back(std::move(msg));
    }
    outbox.clear();
  }
  // Registry mirrors: one add per routing round, not per message.
  if (messages_counter_ != nullptr) {
    messages_counter_->add(stats_.messages - messages_before);
    message_bytes_counter_->add(stats_.message_bytes - bytes_before);
    cross_worker_bytes_counter_->add(stats_.cross_worker_bytes - cross_before);
  }
}

lb::PlacementInput Runtime::build_placement_input(std::uint32_t global_step,
                                                  std::vector<double>* worker_load,
                                                  double* total_measured) const {
  lb::PlacementInput input;
  input.metric = config_.use_measured_load ? lb::LoadMetric::kComputeSeconds
                                           : lb::LoadMetric::kParticles;
  input.step = global_step;
  input.interval_steps = config_.lb_interval;
  input.workers = config_.workers;
  input.dead_workers = dead_workers_;
  input.parts.resize(static_cast<std::size_t>(config_.vps));
  for (int v = 0; v < config_.vps; ++v) {
    auto& entry = input.parts[static_cast<std::size_t>(v)];
    entry.part = v;
    entry.owner = vp_worker_[static_cast<std::size_t>(v)];
    entry.load = config_.use_measured_load
                     ? vp_measured_seconds_[static_cast<std::size_t>(v)]
                     : vps_[static_cast<std::size_t>(v)]->load();
    entry.neighbors = vps_[static_cast<std::size_t>(v)]->neighbor_vps();
    if (worker_load != nullptr) {
      (*worker_load)[static_cast<std::size_t>(entry.owner)] += entry.load;
    }
    if (total_measured != nullptr) {
      *total_measured += vp_measured_seconds_[static_cast<std::size_t>(v)];
    }
  }
  return input;
}

double Runtime::apply_placement(const lb::PlacementInput& input,
                                const std::vector<int>& remap) {
  PICPRK_ASSERT_MSG(remap.size() == input.parts.size(),
                    "balancer returned wrong-size map");
  const std::uint64_t migrations_before = stats_.migrations;
  const std::uint64_t migrated_bytes_before = stats_.migrated_bytes;
  double moved_load = 0.0;
  for (int v = 0; v < config_.vps; ++v) {
    const int target = remap[static_cast<std::size_t>(v)];
    PICPRK_ASSERT_MSG(target >= 0 && target < config_.workers,
                      "balancer mapped a VP to an invalid worker");
    PICPRK_ASSERT_MSG(
        !std::binary_search(dead_workers_.begin(), dead_workers_.end(), target),
        "balancer mapped a VP to a retired worker");
    if (target == vp_worker_[static_cast<std::size_t>(v)]) continue;
    // Migrate: PUP-pack the complete VP state, recreate it from the
    // factory, and unpack — exactly the cost a distributed runtime pays
    // (serialize, ship, rebuild), with the shipping byte count recorded.
    auto& slot = vps_[static_cast<std::size_t>(v)];
    std::vector<std::byte> buffer = pup_pack(*slot);
    stats_.migrated_bytes += buffer.size();
    ++stats_.migrations;
    moved_load += input.parts[static_cast<std::size_t>(v)].load;
    slot = factory_(v);
    pup_unpack(*slot, std::move(buffer));
    vp_worker_[static_cast<std::size_t>(v)] = target;
    PICPRK_TRACE("vpr: migrated vp " << v << " -> worker " << target);
  }
  if (migrations_counter_ != nullptr) {
    migrations_counter_->add(stats_.migrations - migrations_before);
    migrated_bytes_counter_->add(stats_.migrated_bytes - migrated_bytes_before);
  }
  return moved_load;
}

void Runtime::run_load_balancer(std::uint32_t global_step) {
  obs::Phase phase(obs::kPhaseLb, &stats_.lb_seconds, nullptr, lb_hist_);
  util::Timer event_timer;  // feedback clock for cost-model strategies
  ++stats_.lb_invocations;
  if (lb_invocations_counter_ != nullptr) lb_invocations_counter_->add();

  std::vector<double> worker_load(static_cast<std::size_t>(config_.workers), 0.0);
  double total_measured = 0.0;
  lb::PlacementInput in =
      build_placement_input(global_step, &worker_load, &total_measured);
  if (balancer_->wants_feedback()) {
    // Mean measured compute seconds per worker over the closing interval
    // (single process: trivially identical for every observer).
    in.interval_compute_seconds =
        total_measured / static_cast<double>(config_.workers);
  }
  // λ over the *live* workers only — a retired worker's permanent zero
  // would otherwise deflate the mean without describing any real core.
  std::vector<double> live_load;
  live_load.reserve(worker_load.size());
  for (int w = 0; w < config_.workers; ++w) {
    if (!std::binary_search(dead_workers_.begin(), dead_workers_.end(), w)) {
      live_load.push_back(worker_load[static_cast<std::size_t>(w)]);
    }
  }
  stats_.imbalance_before_lb.push_back(
      util::imbalance(std::span<const double>(live_load)).ratio);

  // A balancer without degraded support must not see dead workers; fall
  // back to pure evacuation so orphans still leave (the caller is
  // expected to have checked supports_degraded() before relying on
  // quality, this keeps correctness regardless).
  const std::vector<int> remap =
      (!dead_workers_.empty() && !balancer_->supports_degraded())
          ? lb::evacuate_placement(in)
          : balancer_->rebalance_placement(in);

  const std::uint64_t migrations_before = stats_.migrations;
  const std::uint64_t migrated_bytes_before = stats_.migrated_bytes;
  const double moved_load = apply_placement(in, remap);
  if (balancer_->wants_feedback()) {
    lb::ApplyFeedback feedback;
    if (stats_.migrations != migrations_before) {
      feedback.lb_seconds = event_timer.elapsed();
      feedback.moved_load = moved_load;
      feedback.moved_bytes = stats_.migrated_bytes - migrated_bytes_before;
    }
    balancer_->note_applied(feedback);
  }
  // Measured loads describe the epoch that ended here.
  std::fill(vp_measured_seconds_.begin(), vp_measured_seconds_.end(), 0.0);
}

void Runtime::retire_worker(int worker) {
  PICPRK_EXPECTS(worker >= 0 && worker < config_.workers);
  if (std::binary_search(dead_workers_.begin(), dead_workers_.end(), worker)) return;
  dead_workers_.push_back(worker);
  std::sort(dead_workers_.begin(), dead_workers_.end());
  PICPRK_ASSERT_MSG(static_cast<int>(dead_workers_.size()) < config_.workers,
                    "vpr: every worker retired — nothing left to run VPs");
  // Evacuate immediately through the balancer's degraded path so the
  // next superstep never schedules a VP on the dead worker.
  obs::Phase phase(obs::kPhaseLb, &stats_.lb_seconds, nullptr, lb_hist_);
  const lb::PlacementInput input =
      build_placement_input(current_step_, nullptr, nullptr);
  const std::vector<int> remap = balancer_->supports_degraded()
                                     ? balancer_->rebalance_placement(input)
                                     : lb::evacuate_placement(input);
  apply_placement(input, remap);
  PICPRK_TRACE("vpr: retired worker " << worker << ", " << live_workers()
                                      << " live");
}

}  // namespace picprk::vpr
