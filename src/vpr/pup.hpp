// PUP (pack/unpack) serialization, modelled on Charm++/AMPI's PUP
// framework which the paper uses for VP migration ("the user can provide
// appropriate packing/unpacking (PUP) routines. We opted for PUP because
// it yields higher performance", §IV-C). A single pup() method describes
// a type's state once and is used for sizing, packing and unpacking.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "util/assert.hpp"

namespace picprk::vpr {

class Pup {
 public:
  enum class Mode { Size, Pack, Unpack };

  /// Sizing or packing pupper. In Pack mode call reserve_from_size()
  /// first or let the buffer grow.
  explicit Pup(Mode mode) : mode_(mode) {
    PICPRK_EXPECTS(mode != Mode::Unpack);
  }

  /// Unpacking pupper over an existing buffer.
  explicit Pup(std::vector<std::byte> buffer)
      : mode_(Mode::Unpack), buffer_(std::move(buffer)) {}

  Mode mode() const { return mode_; }
  bool packing() const { return mode_ == Mode::Pack; }
  bool unpacking() const { return mode_ == Mode::Unpack; }
  bool sizing() const { return mode_ == Mode::Size; }

  /// Scalar / trivially-copyable value.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void operator()(T& value) {
    raw(&value, sizeof(T));
  }

  /// Vector of trivially-copyable elements (length-prefixed).
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void operator()(std::vector<T>& vec) {
    std::uint64_t n = vec.size();
    (*this)(n);
    if (unpacking()) vec.resize(n);
    if (n > 0) raw(vec.data(), n * sizeof(T));
  }

  void operator()(std::string& s) {
    std::uint64_t n = s.size();
    (*this)(n);
    if (unpacking()) s.resize(n);
    if (n > 0) raw(s.data(), n);
  }

  /// Vector of nested pupable objects (element-wise).
  template <typename T>
    requires(!std::is_trivially_copyable_v<T>) &&
            requires(T& t, Pup& p) { t.pup(p); }
  void operator()(std::vector<T>& vec) {
    std::uint64_t n = vec.size();
    (*this)(n);
    if (unpacking()) vec.resize(n);
    for (auto& element : vec) element.pup(*this);
  }

  /// Nested pupable object.
  template <typename T>
    requires requires(T& t, Pup& p) { t.pup(p); }
  void operator()(T& value) {
    value.pup(*this);
  }

  /// Bytes processed so far (== final size after a Size pass).
  std::size_t bytes() const { return cursor_; }

  /// Takes the packed buffer (Pack mode, after pupping everything).
  std::vector<std::byte> take_buffer() {
    PICPRK_EXPECTS(packing());
    return std::move(buffer_);
  }

  /// In Unpack mode: whether the whole buffer was consumed.
  bool fully_consumed() const { return cursor_ == buffer_.size(); }

 private:
  void raw(void* data, std::size_t n) {
    switch (mode_) {
      case Mode::Size:
        break;
      case Mode::Pack:
        buffer_.resize(cursor_ + n);
        std::memcpy(buffer_.data() + cursor_, data, n);
        break;
      case Mode::Unpack:
        PICPRK_ASSERT_MSG(cursor_ + n <= buffer_.size(),
                          "pup unpack ran past the end of the buffer");
        std::memcpy(data, buffer_.data() + cursor_, n);
        break;
    }
    cursor_ += n;
  }

  Mode mode_;
  std::vector<std::byte> buffer_;
  std::size_t cursor_ = 0;
};

/// Packs a pupable object into a fresh buffer.
template <typename T>
std::vector<std::byte> pup_pack(T& object) {
  Pup p(Pup::Mode::Pack);
  object.pup(p);
  return p.take_buffer();
}

/// Size a pupable object's packed representation.
template <typename T>
std::size_t pup_size(T& object) {
  Pup p(Pup::Mode::Size);
  object.pup(p);
  return p.bytes();
}

/// Unpacks a buffer into an existing object (must consume it fully).
template <typename T>
void pup_unpack(T& object, std::vector<std::byte> buffer) {
  Pup p(std::move(buffer));
  object.pup(p);
  PICPRK_ASSERT_MSG(p.fully_consumed(), "pup unpack left trailing bytes");
}

}  // namespace picprk::vpr
