// Load-balancing strategies for the virtual-processor runtime — the
// stand-ins for the Charm++ balancer collection the paper mentions
// ("Charm++ provides not just one but a collection of load balancing
// strategies", §IV-C). Each strategy maps VPs to workers given measured
// per-VP loads; GreedyLB is the paper's choice ("migrates VPs from the
// most loaded to the least loaded core").
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace picprk::vpr {

struct VpLoad {
  int vp = 0;
  double load = 0.0;  ///< abstract or measured load since the last LB
  int worker = 0;     ///< current placement
  /// Ids of VPs whose subdomains are adjacent (the locality hint of the
  /// paper's closing §V-B remark: "Even a diffusion based AMPI load
  /// balancer would not preserve the compactness of the subdomains
  /// unless it is properly hinted"). May be empty; only hint-aware
  /// balancers read it.
  std::vector<int> neighbors;
};

class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;

  /// Returns the new worker for each entry of `loads` (same order).
  virtual std::vector<int> remap(const std::vector<VpLoad>& loads, int workers) = 0;

  virtual std::string name() const = 0;
};

/// No rebalancing; the over-decomposed but statically mapped baseline.
class NullLb final : public LoadBalancer {
 public:
  std::vector<int> remap(const std::vector<VpLoad>& loads, int workers) override;
  std::string name() const override { return "null"; }
};

/// Charm-style GreedyLB: VPs sorted by decreasing load, each assigned to
/// the currently least-loaded worker. Ignores current placement (and
/// hence locality) — the behaviour the paper's strong-scaling discussion
/// attributes to the AMPI runtime.
class GreedyLb final : public LoadBalancer {
 public:
  std::vector<int> remap(const std::vector<VpLoad>& loads, int workers) override;
  std::string name() const override { return "greedy"; }
};

/// Charm-style RefineLB: keeps placements and only moves VPs off
/// overloaded workers onto underloaded ones until every worker is below
/// `tolerance` × average. Fewer migrations than GreedyLB.
class RefineLb final : public LoadBalancer {
 public:
  explicit RefineLb(double tolerance = 1.05) : tolerance_(tolerance) {}
  std::vector<int> remap(const std::vector<VpLoad>& loads, int workers) override;
  std::string name() const override { return "refine"; }

 private:
  double tolerance_;
};

/// Diffusion among workers arranged in a ring: each worker compares with
/// its right neighbor and sheds its lightest VPs across when the
/// difference exceeds the threshold fraction of the average load.
class DiffusionLb final : public LoadBalancer {
 public:
  explicit DiffusionLb(double threshold = 0.10) : threshold_(threshold) {}
  std::vector<int> remap(const std::vector<VpLoad>& loads, int workers) override;
  std::string name() const override { return "diffusion"; }

 private:
  double threshold_;
};

/// Hinted, locality-preserving balancer — the paper's §V-B future-work
/// remark implemented: refine-style shedding that (a) sheds *border* VPs
/// (those with the fewest same-worker neighbors) off overloaded workers
/// and (b) places them on the underloaded worker already hosting most of
/// their neighbors. Balances like RefineLB while keeping subdomains
/// compact, so the per-step neighbor traffic stays local.
class CompactLb final : public LoadBalancer {
 public:
  explicit CompactLb(double tolerance = 1.05) : tolerance_(tolerance) {}
  std::vector<int> remap(const std::vector<VpLoad>& loads, int workers) override;
  std::string name() const override { return "compact"; }

 private:
  double tolerance_;
};

/// Rotates every VP to the next worker — a pathological strategy used in
/// tests and ablations to price migration with zero balance benefit.
class RotateLb final : public LoadBalancer {
 public:
  std::vector<int> remap(const std::vector<VpLoad>& loads, int workers) override;
  std::string name() const override { return "rotate"; }
};

/// Factory by name: "null", "greedy", "refine", "diffusion", "rotate".
std::unique_ptr<LoadBalancer> make_load_balancer(const std::string& name);

}  // namespace picprk::vpr
