#include "perfsim/workload2d.hpp"

#include "util/assert.hpp"

namespace picprk::perfsim {

Workload2D Workload2D::from_expected(const pic::InitParams& params) {
  const std::int64_t c = params.grid.cells;
  // Reuse the Initializer's expectation logic through a lightweight
  // instance-free path: column weights + the row mask semantics of
  // expected_in_cell, including rotate90.
  const std::vector<double> weights = pic::column_cell_expectations(params);
  std::vector<double> counts(static_cast<std::size_t>(c * c), 0.0);
  const auto* patch = std::get_if<pic::Patch>(&params.distribution);
  for (std::int64_t cy = 0; cy < c; ++cy) {
    for (std::int64_t cx = 0; cx < c; ++cx) {
      if (patch && !patch->region.contains_cell(cx, cy)) continue;
      const std::int64_t skew = params.rotate90 ? cy : cx;
      counts[static_cast<std::size_t>(cy * c + cx)] =
          weights[static_cast<std::size_t>(skew)];
    }
  }
  return Workload2D(c, std::move(counts));
}

Workload2D Workload2D::from_initializer(const pic::Initializer& init) {
  const std::int64_t c = init.params().grid.cells;
  std::vector<double> counts(static_cast<std::size_t>(c * c), 0.0);
  for (std::int64_t cy = 0; cy < c; ++cy) {
    for (std::int64_t cx = 0; cx < c; ++cx) {
      counts[static_cast<std::size_t>(cy * c + cx)] =
          static_cast<double>(init.count_in_cell(cx, cy));
    }
  }
  return Workload2D(c, std::move(counts));
}

Workload2D::Workload2D(std::int64_t cells, std::vector<double> counts)
    : cells_(cells), counts_(std::move(counts)) {
  PICPRK_EXPECTS(cells_ >= 1);
  PICPRK_EXPECTS(counts_.size() == static_cast<std::size_t>(cells_ * cells_));
}

std::size_t Workload2D::physical_index(std::int64_t cx, std::int64_t cy) const {
  const std::int64_t px = pic::wrap_index(cx - offset_x_, cells_);
  const std::int64_t py = pic::wrap_index(cy - offset_y_, cells_);
  return static_cast<std::size_t>(py * cells_ + px);
}

double Workload2D::count(std::int64_t cx, std::int64_t cy) const {
  PICPRK_EXPECTS(cx >= 0 && cx < cells_ && cy >= 0 && cy < cells_);
  return counts_[physical_index(cx, cy)];
}

double Workload2D::total() const { return range_sum(0, cells_, 0, cells_); }

void Workload2D::rebuild_prefix() const {
  const std::int64_t c = cells_;
  prefix_.assign(static_cast<std::size_t>((c + 1) * (c + 1)), 0.0);
  for (std::int64_t y = 0; y < c; ++y) {
    double row = 0.0;
    for (std::int64_t x = 0; x < c; ++x) {
      row += counts_[static_cast<std::size_t>(y * c + x)];
      prefix_[static_cast<std::size_t>((y + 1) * (c + 1) + (x + 1))] =
          prefix_[static_cast<std::size_t>(y * (c + 1) + (x + 1))] + row;
    }
  }
  prefix_dirty_ = false;
}

double Workload2D::prefix_at(std::int64_t px, std::int64_t py) const {
  return prefix_[static_cast<std::size_t>(py * (cells_ + 1) + px)];
}

double Workload2D::physical_rect_sum(std::int64_t px0, std::int64_t px1, std::int64_t py0,
                                     std::int64_t py1) const {
  if (px0 >= px1 || py0 >= py1) return 0.0;
  return prefix_at(px1, py1) - prefix_at(px0, py1) - prefix_at(px1, py0) +
         prefix_at(px0, py0);
}

double Workload2D::range_sum(std::int64_t x0, std::int64_t x1, std::int64_t y0,
                             std::int64_t y1) const {
  PICPRK_EXPECTS(x0 >= 0 && x0 <= x1 && x1 <= cells_);
  PICPRK_EXPECTS(y0 >= 0 && y0 <= y1 && y1 <= cells_);
  if (prefix_dirty_) rebuild_prefix();
  // Map the logical rectangle onto physical coordinates; each axis may
  // wrap once, giving up to 4 physical rectangles.
  const std::int64_t px0 = pic::wrap_index(x0 - offset_x_, cells_);
  const std::int64_t py0 = pic::wrap_index(y0 - offset_y_, cells_);
  const std::int64_t w = x1 - x0;
  const std::int64_t h = y1 - y0;

  const std::int64_t wx1 = std::min(w, cells_ - px0);  // width before the x seam
  const std::int64_t hy1 = std::min(h, cells_ - py0);  // height before the y seam

  double sum = 0.0;
  sum += physical_rect_sum(px0, px0 + wx1, py0, py0 + hy1);
  sum += physical_rect_sum(0, w - wx1, py0, py0 + hy1);
  sum += physical_rect_sum(px0, px0 + wx1, 0, h - hy1);
  sum += physical_rect_sum(0, w - wx1, 0, h - hy1);
  return sum;
}

void Workload2D::advance(std::int64_t dx, std::int64_t dy) {
  offset_x_ = pic::wrap_index(offset_x_ + dx, cells_);
  offset_y_ = pic::wrap_index(offset_y_ + dy, cells_);
}

void Workload2D::add_uniform(const pic::CellRegion& region, double amount) {
  PICPRK_EXPECTS(region.area() > 0);
  const double per_cell = amount / static_cast<double>(region.area());
  for (std::int64_t cy = region.y0; cy < region.y1; ++cy) {
    for (std::int64_t cx = region.x0; cx < region.x1; ++cx) {
      counts_[physical_index(cx, cy)] += per_cell;
    }
  }
  prefix_dirty_ = true;
}

void Workload2D::scale_region(const pic::CellRegion& region, double factor) {
  PICPRK_EXPECTS(factor >= 0.0);
  for (std::int64_t cy = region.y0; cy < region.y1; ++cy) {
    for (std::int64_t cx = region.x0; cx < region.x1; ++cx) {
      counts_[physical_index(cx, cy)] *= factor;
    }
  }
  prefix_dirty_ = true;
}

}  // namespace picprk::perfsim
