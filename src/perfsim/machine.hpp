// The machine/cost model of the performance simulator (DESIGN.md §2):
// an Edison-like cluster abstracted to the parameters that determine the
// *shape* of the paper's figures — per-particle compute cost, intra- vs
// inter-node message cost, per-VP scheduling overhead, and optional
// category-1 disturbances (per-core speed skew, OS noise).
//
// Absolute values are calibrated to plausible 2016-era hardware; the
// reproduction target is orderings and crossovers, not absolute seconds
// (EXPERIMENTS.md discusses sensitivity).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace picprk::perfsim {

struct MachineModel {
  /// Cores per node (Edison: two 12-core sockets).
  int cores_per_node = 24;

  /// Seconds per particle force+move (≈ 50 ns: a few dozen flops + one
  /// cache-missing grid access).
  double t_particle = 50e-9;

  /// Message cost: alpha + beta · bytes.
  double alpha_intra = 0.8e-6;   ///< same-node latency
  double beta_intra = 0.12e-9;   ///< ~8 GB/s effective
  double alpha_inter = 2.5e-6;   ///< cross-node latency (Aries)
  double beta_inter = 0.30e-9;   ///< ~3.3 GB/s effective per flow

  /// Payload sizes.
  double particle_bytes = 80.0;  ///< sizeof(pic::Particle)
  double cell_bytes = 8.0;       ///< one mesh-point charge

  /// Fixed cost of one load-balancing decision round (reductions,
  /// bookkeeping), charged to every core. Used by the application-level
  /// diffusion scheme, whose LB step is one allreduce plus neighbor
  /// sends.
  double lb_decision_cost = 40e-6;

  /// Stop-the-world cost of one *runtime* LB invocation (AMPI/Charm
  /// AtSync: quiescence detection, stats collection, strategy), charged
  /// to every core: base + per_vp · V.
  double lb_stall_base = 20.0e-3;
  double lb_stall_per_vp = 2.0e-6;

  /// Effective per-node bandwidth for VP migration traffic (NIC
  /// contention + PUP pack/unpack copies + container rebuild). All VPs
  /// of a node migrate through this shared pipe, which is what makes a
  /// greedy all-moves rebalance expensive at small F (Figure 5) — see
  /// EXPERIMENTS.md for the calibration discussion.
  double migration_bandwidth_per_node = 0.5e9;

  /// Per-VP per-step scheduling overhead of the over-decomposed runtime
  /// (context switch + message dispatch) — what makes very large d lose
  /// in Figure 5.
  double vp_overhead = 2.0e-6;

  /// Relative compute-noise amplitude per (core, step): uniform in
  /// [−a, +a] with a = noise_level·√3 (category-1 imbalance knob).
  double noise_level = 0.0;
  std::uint64_t noise_seed = 0x4015EEDull;

  /// Optional per-core speed multipliers (<1 = slower core); empty means
  /// homogeneous. Category-1 imbalance knob.
  std::vector<double> core_speed;

  int node_of(int core) const { return core / cores_per_node; }
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  /// Software cost of delivering one cross-node message at the receiver
  /// (progress engine / scheduler wakeup on top of the wire α-β). This
  /// is what makes a locality-fragmented VP placement expensive per step
  /// — the paper's §V-B explanation of why ampi loses strong scaling.
  double remote_delivery_overhead = 20e-6;

  double msg_cost(double bytes, bool intra) const {
    return intra ? alpha_intra + beta_intra * bytes : alpha_inter + beta_inter * bytes;
  }

  double speed_of(int core) const {
    if (core_speed.empty()) return 1.0;
    PICPRK_EXPECTS(core >= 0 && static_cast<std::size_t>(core) < core_speed.size());
    return core_speed[static_cast<std::size_t>(core)];
  }

  /// Deterministic noise multiplier for (core, step).
  double noise(int core, std::uint32_t step) const {
    if (noise_level <= 0.0) return 1.0;
    const util::CounterRng rng(noise_seed, static_cast<std::uint64_t>(core),
                               static_cast<std::uint64_t>(step));
    const double u = rng.double_at(0) * 2.0 - 1.0;  // [-1, 1)
    return 1.0 + noise_level * 1.7320508075688772 * u;
  }
};

}  // namespace picprk::perfsim
