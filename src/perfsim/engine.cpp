#include "perfsim/engine.hpp"

#include <algorithm>
#include <cmath>

#include "comm/cart.hpp"
#include "util/assert.hpp"
#include "lb/bounds.hpp"
#include "lb/registry.hpp"

namespace picprk::perfsim {

namespace {

/// Per-step accumulation helper: records makespan and imbalance.
struct StepAccumulator {
  const RunConfig& config;
  ModelResult& result;
  double imbalance_sum = 0.0;
  std::uint32_t samples = 0;

  void commit(std::uint32_t step, double max_compute, double mean_compute,
              double makespan, double lb_part) {
    result.seconds += makespan;
    result.compute_seconds += max_compute;
    result.lb_seconds += lb_part;
    result.comm_seconds += makespan - max_compute - lb_part;
    const double ratio = mean_compute > 0.0 ? max_compute / mean_compute : 1.0;
    imbalance_sum += ratio;
    ++samples;
    if (config.collect_series && step % config.sample_every == 0) {
      result.imbalance_series.push_back(ratio);
    }
  }

  void finish() {
    result.avg_imbalance = samples > 0 ? imbalance_sum / samples : 1.0;
  }
};

}  // namespace

Engine::Engine(MachineModel machine, ColumnWorkload workload)
    : machine_(std::move(machine)), workload_(std::move(workload)) {}

void Engine::apply_events(ColumnWorkload& w, std::uint32_t step) const {
  for (const EventModel& e : events_) {
    if (e.step != step) continue;
    if (e.remove_fraction > 0.0) w.scale_range(e.x0, e.x1, 1.0 - e.remove_fraction);
    if (e.inject_amount > 0.0) w.add_uniform(e.x0, e.x1, e.inject_amount);
  }
}

double Engine::serial_seconds(const RunConfig& config) const {
  ColumnWorkload w = workload_;
  double seconds = 0.0;
  for (std::uint32_t step = 0; step < config.steps; ++step) {
    apply_events(w, step);
    seconds += w.total() * machine_.t_particle;
    w.advance(config.shift_per_step);
  }
  return seconds;
}

ModelResult Engine::run_static(int cores, const RunConfig& config) const {
  return run_diffusion(cores, config,
                       DiffusionModelParams{/*frequency=*/0, 0.0, 1});
}

ModelResult Engine::run_diffusion(int cores, const RunConfig& config,
                                  const DiffusionModelParams& lb) const {
  PICPRK_EXPECTS(cores >= 1);
  const auto [px, py] = comm::near_square_factors(cores);
  const std::int64_t c = workload_.columns();
  PICPRK_EXPECTS(px <= c && py <= c);

  ColumnWorkload w = workload_;
  std::vector<std::int64_t> xb(static_cast<std::size_t>(px) + 1);
  for (int i = 0; i < px; ++i) xb[static_cast<std::size_t>(i)] = comm::block_range(c, px, i).lo;
  xb[static_cast<std::size_t>(px)] = c;
  std::vector<double> rowfrac(static_cast<std::size_t>(py));
  std::vector<std::int64_t> rows(static_cast<std::size_t>(py));
  for (int j = 0; j < py; ++j) {
    rows[static_cast<std::size_t>(j)] = comm::block_range(c, py, j).count();
    rowfrac[static_cast<std::size_t>(j)] =
        static_cast<double>(rows[static_cast<std::size_t>(j)]) / static_cast<double>(c);
  }

  ModelResult result;
  StepAccumulator acc{config, result};

  std::vector<double> colload(static_cast<std::size_t>(px));
  std::vector<double> colout(static_cast<std::size_t>(px));
  std::vector<double> lb_extra(static_cast<std::size_t>(cores), 0.0);
  const std::int64_t shift = config.shift_per_step;
  const double log2p = std::log2(std::max(2, cores));

  auto rank_of = [px = px](int i, int j) { return j * px + i; };

  for (std::uint32_t step = 0; step < config.steps; ++step) {
    apply_events(w, step);

    for (int i = 0; i < px; ++i) {
      const std::int64_t lo = xb[static_cast<std::size_t>(i)];
      const std::int64_t hi = xb[static_cast<std::size_t>(i) + 1];
      colload[static_cast<std::size_t>(i)] = w.range_sum(lo, hi);
      colout[static_cast<std::size_t>(i)] = w.range_sum(std::max(lo, hi - shift), hi);
    }

    // Load balancing decision happens at the same cadence as the real
    // driver: after the move+exchange of steps that are multiples of the
    // frequency. Its costs land on this step's lb_extra.
    std::fill(lb_extra.begin(), lb_extra.end(), 0.0);
    if (lb.frequency > 0 && step > 0 && step % lb.frequency == 0) {
      // Whole-particle loads (trunc), matching the real driver's counts.
      std::vector<double> col_loads(static_cast<std::size_t>(px));
      double total = 0.0;
      for (int i = 0; i < px; ++i) {
        col_loads[static_cast<std::size_t>(i)] = static_cast<double>(
            static_cast<std::uint64_t>(colload[static_cast<std::size_t>(i)]));
        total += colload[static_cast<std::size_t>(i)];
      }
      const double abs_threshold = lb.threshold * total / static_cast<double>(px);
      const auto new_xb =
          picprk::lb::diffuse_bounds(xb, col_loads, abs_threshold, lb.border_width);
      // Decision round: an allreduce over all cores.
      const double decision = machine_.lb_decision_cost + log2p * machine_.alpha_inter;
      for (auto& v : lb_extra) v += decision;
      for (int b = 1; b < px; ++b) {
        const std::int64_t oldb = xb[static_cast<std::size_t>(b)];
        const std::int64_t newb = new_xb[static_cast<std::size_t>(b)];
        if (oldb == newb) continue;
        const std::int64_t m0 = std::min(oldb, newb);
        const std::int64_t m1 = std::max(oldb, newb);
        const double moved_particles = w.range_sum(m0, m1);
        ++result.migrations;
        for (int j = 0; j < py; ++j) {
          const double mesh_bytes = static_cast<double>((m1 - m0)) *
                                    static_cast<double>(rows[static_cast<std::size_t>(j)] + 1) *
                                    machine_.cell_bytes;
          const double part_bytes =
              moved_particles * rowfrac[static_cast<std::size_t>(j)] * machine_.particle_bytes;
          const int ra = rank_of(b - 1, j);
          const int rb = rank_of(b, j);
          const double cost =
              machine_.msg_cost(mesh_bytes + part_bytes, machine_.same_node(ra, rb));
          lb_extra[static_cast<std::size_t>(ra)] += cost;
          lb_extra[static_cast<std::size_t>(rb)] += cost;
          result.migrated_mbytes += (mesh_bytes + part_bytes) / 1.0e6;
        }
      }
      xb = new_xb;
      // Re-evaluate loads under the new boundaries for this step's work.
      for (int i = 0; i < px; ++i) {
        const std::int64_t lo = xb[static_cast<std::size_t>(i)];
        const std::int64_t hi = xb[static_cast<std::size_t>(i) + 1];
        colload[static_cast<std::size_t>(i)] = w.range_sum(lo, hi);
        colout[static_cast<std::size_t>(i)] = w.range_sum(std::max(lo, hi - shift), hi);
      }
    }

    double makespan = 0.0, max_compute = 0.0, sum_compute = 0.0, max_lb = 0.0;
    for (int j = 0; j < py; ++j) {
      for (int i = 0; i < px; ++i) {
        const int r = rank_of(i, j);
        const double n = colload[static_cast<std::size_t>(i)] * rowfrac[static_cast<std::size_t>(j)];
        const double compute = n * machine_.t_particle / machine_.speed_of(r) *
                               machine_.noise(r, step);
        const double out_bytes = colout[static_cast<std::size_t>(i)] *
                                 rowfrac[static_cast<std::size_t>(j)] * machine_.particle_bytes;
        const int right = rank_of((i + 1) % px, j);
        const int left = rank_of((i - 1 + px) % px, j);
        const double in_bytes = colout[static_cast<std::size_t>((i - 1 + px) % px)] *
                                rowfrac[static_cast<std::size_t>(j)] * machine_.particle_bytes;
        double comm = 0.0;
        if (px > 1) {
          comm += machine_.msg_cost(out_bytes, machine_.same_node(r, right));
          comm += machine_.msg_cost(in_bytes, machine_.same_node(r, left));
          if (!machine_.same_node(r, left)) comm += machine_.remote_delivery_overhead;
        }
        const double lb_r = lb_extra[static_cast<std::size_t>(r)];
        makespan = std::max(makespan, compute + comm + lb_r);
        max_compute = std::max(max_compute, compute);
        max_lb = std::max(max_lb, lb_r);
        sum_compute += compute;
      }
    }
    acc.commit(step, max_compute, sum_compute / static_cast<double>(cores), makespan,
               std::min(max_lb, makespan - max_compute));

    w.advance(shift);
  }
  acc.finish();

  // Final §V-B metric: max particles per core under the final bounds.
  double max_particles = 0.0;
  for (int i = 0; i < px; ++i) {
    const double coln = w.range_sum(xb[static_cast<std::size_t>(i)],
                                    xb[static_cast<std::size_t>(i) + 1]);
    for (int j = 0; j < py; ++j) {
      max_particles = std::max(max_particles, coln * rowfrac[static_cast<std::size_t>(j)]);
    }
  }
  result.max_particles_final = max_particles;
  return result;
}

ModelResult Engine::run_vpr(int cores, const RunConfig& config,
                            const VprModelParams& params) const {
  PICPRK_EXPECTS(cores >= 1);
  PICPRK_EXPECTS(params.overdecomposition >= 1);
  const int vps = cores * params.overdecomposition;
  const auto [vpx, vpy] = comm::near_square_factors(vps);
  const std::int64_t c = workload_.columns();
  PICPRK_EXPECTS(vpx <= c && vpy <= c);

  ColumnWorkload w = workload_;
  std::vector<std::int64_t> vxb(static_cast<std::size_t>(vpx) + 1);
  for (int i = 0; i < vpx; ++i)
    vxb[static_cast<std::size_t>(i)] = comm::block_range(c, vpx, i).lo;
  vxb[static_cast<std::size_t>(vpx)] = c;
  std::vector<double> rowfrac(static_cast<std::size_t>(vpy));
  std::vector<std::int64_t> vrows(static_cast<std::size_t>(vpy));
  for (int j = 0; j < vpy; ++j) {
    vrows[static_cast<std::size_t>(j)] = comm::block_range(c, vpy, j).count();
    rowfrac[static_cast<std::size_t>(j)] =
        static_cast<double>(vrows[static_cast<std::size_t>(j)]) / static_cast<double>(c);
  }

  std::vector<int> map(static_cast<std::size_t>(vps));
  for (int v = 0; v < vps; ++v) {
    map[static_cast<std::size_t>(v)] =
        static_cast<int>((static_cast<std::int64_t>(v) * cores) / vps);
  }
  auto balancer = lb::make_strategy(params.balancer);
  PICPRK_EXPECTS(balancer->balances_placement());

  ModelResult result;
  StepAccumulator acc{config, result};

  std::vector<double> colsum(static_cast<std::size_t>(vpx));
  std::vector<double> colout(static_cast<std::size_t>(vpx));
  std::vector<double> compute(static_cast<std::size_t>(cores));
  std::vector<double> comm_cost(static_cast<std::size_t>(cores));
  std::vector<double> lb_extra(static_cast<std::size_t>(cores));
  const std::int64_t shift = config.shift_per_step;

  for (std::uint32_t step = 0; step < config.steps; ++step) {
    apply_events(w, step);

    for (int i = 0; i < vpx; ++i) {
      const std::int64_t lo = vxb[static_cast<std::size_t>(i)];
      const std::int64_t hi = vxb[static_cast<std::size_t>(i) + 1];
      colsum[static_cast<std::size_t>(i)] = w.range_sum(lo, hi);
      colout[static_cast<std::size_t>(i)] = w.range_sum(std::max(lo, hi - shift), hi);
    }

    std::fill(compute.begin(), compute.end(), 0.0);
    std::fill(comm_cost.begin(), comm_cost.end(), 0.0);
    std::fill(lb_extra.begin(), lb_extra.end(), 0.0);

    for (int v = 0; v < vps; ++v) {
      const int i = v % vpx;
      const int j = v / vpx;
      const int core = map[static_cast<std::size_t>(v)];
      const double n =
          colsum[static_cast<std::size_t>(i)] * rowfrac[static_cast<std::size_t>(j)];
      compute[static_cast<std::size_t>(core)] += n * machine_.t_particle + machine_.vp_overhead;
      if (vpx > 1) {
        const double out_bytes = colout[static_cast<std::size_t>(i)] *
                                 rowfrac[static_cast<std::size_t>(j)] * machine_.particle_bytes;
        const int dst_vp = j * vpx + (i + 1) % vpx;
        const int dst_core = map[static_cast<std::size_t>(dst_vp)];
        if (dst_core != core) {
          const bool intra = machine_.same_node(core, dst_core);
          const double cost = machine_.msg_cost(out_bytes, intra);
          comm_cost[static_cast<std::size_t>(core)] += cost;
          comm_cost[static_cast<std::size_t>(dst_core)] += cost;
          if (!intra) {
            comm_cost[static_cast<std::size_t>(dst_core)] +=
                machine_.remote_delivery_overhead;
          }
        }
      }
    }

    // Runtime load balancing at interval F.
    double lb_part_cap = 0.0;
    if (params.lb_interval > 0 && step > 0 && step % params.lb_interval == 0) {
      lb::PlacementInput lb_input;
      lb_input.metric = params.measured_load ? lb::LoadMetric::kComputeSeconds
                                             : lb::LoadMetric::kParticles;
      lb_input.step = step;
      lb_input.interval_steps = params.lb_interval;
      lb_input.workers = cores;
      lb_input.parts.resize(static_cast<std::size_t>(vps));
      for (int v = 0; v < vps; ++v) {
        const int i = v % vpx;
        const int j = v / vpx;
        const int core = map[static_cast<std::size_t>(v)];
        double load =
            colsum[static_cast<std::size_t>(i)] * rowfrac[static_cast<std::size_t>(j)];
        if (params.measured_load) load /= machine_.speed_of(core);
        auto& part = lb_input.parts[static_cast<std::size_t>(v)];
        part.part = v;
        part.load = load;
        part.owner = core;
        // 4-neighborhood locality hints for hint-aware balancers.
        part.neighbors = {j * vpx + (i + 1) % vpx, j * vpx + (i + vpx - 1) % vpx,
                          ((j + 1) % vpy) * vpx + i, ((j + vpy - 1) % vpy) * vpx + i};
      }
      const std::vector<int> remap = balancer->rebalance_placement(lb_input);
      const double decision =
          machine_.lb_stall_base + machine_.lb_stall_per_vp * static_cast<double>(vps);
      for (auto& v : lb_extra) v += decision;
      // Migration traffic is serialized through each node's shared pipe
      // (NIC + PUP copies): accumulate per-node in+out bytes, then charge
      // every core of a node the node's transfer time.
      const int nodes = (cores + machine_.cores_per_node - 1) / machine_.cores_per_node;
      std::vector<double> node_bytes(static_cast<std::size_t>(nodes), 0.0);
      for (int v = 0; v < vps; ++v) {
        const int from = map[static_cast<std::size_t>(v)];
        const int to = remap[static_cast<std::size_t>(v)];
        if (from == to) continue;
        const int i = v % vpx;
        const int j = v / vpx;
        const double vp_bytes =
            static_cast<double>((vxb[static_cast<std::size_t>(i) + 1] -
                                 vxb[static_cast<std::size_t>(i)] + 1) *
                                (vrows[static_cast<std::size_t>(j)] + 1)) *
                machine_.cell_bytes +
            lb_input.parts[static_cast<std::size_t>(v)].load * machine_.particle_bytes;
        node_bytes[static_cast<std::size_t>(machine_.node_of(from))] += vp_bytes;
        node_bytes[static_cast<std::size_t>(machine_.node_of(to))] += vp_bytes;
        result.migrated_mbytes += vp_bytes / 1.0e6;
        ++result.migrations;
      }
      for (int core = 0; core < cores; ++core) {
        lb_extra[static_cast<std::size_t>(core)] +=
            node_bytes[static_cast<std::size_t>(machine_.node_of(core))] /
            machine_.migration_bandwidth_per_node;
      }
      map = remap;
    }

    double makespan = 0.0, max_compute = 0.0, sum_compute = 0.0;
    for (int core = 0; core < cores; ++core) {
      const double comp = compute[static_cast<std::size_t>(core)] /
                          machine_.speed_of(core) * machine_.noise(core, step);
      const double t = comp + comm_cost[static_cast<std::size_t>(core)] +
                       lb_extra[static_cast<std::size_t>(core)];
      makespan = std::max(makespan, t);
      max_compute = std::max(max_compute, comp);
      sum_compute += comp;
      lb_part_cap = std::max(lb_part_cap, lb_extra[static_cast<std::size_t>(core)]);
    }
    acc.commit(step, max_compute, sum_compute / static_cast<double>(cores), makespan,
               std::min(lb_part_cap, makespan - max_compute));

    w.advance(shift);
  }
  acc.finish();

  // Final per-core particle counts.
  std::vector<double> core_particles(static_cast<std::size_t>(cores), 0.0);
  for (int v = 0; v < vps; ++v) {
    const int i = v % vpx;
    const int j = v / vpx;
    core_particles[static_cast<std::size_t>(map[static_cast<std::size_t>(v)])] +=
        w.range_sum(vxb[static_cast<std::size_t>(i)], vxb[static_cast<std::size_t>(i) + 1]) *
        rowfrac[static_cast<std::size_t>(j)];
  }
  result.max_particles_final =
      *std::max_element(core_particles.begin(), core_particles.end());
  return result;
}

}  // namespace picprk::perfsim
