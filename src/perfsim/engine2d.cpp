#include "perfsim/engine2d.hpp"

#include <algorithm>
#include <cmath>

#include "comm/cart.hpp"
#include "util/assert.hpp"
#include "lb/bounds.hpp"
#include "lb/registry.hpp"

namespace picprk::perfsim {

Engine2D::Engine2D(MachineModel machine, Workload2D workload)
    : machine_(std::move(machine)), workload_(std::move(workload)) {}

void Engine2D::apply_events(Workload2D& w, std::uint32_t step) const {
  for (const Event2D& e : events_) {
    if (e.step != step) continue;
    if (e.remove_fraction > 0.0) w.scale_region(e.region, 1.0 - e.remove_fraction);
    if (e.inject_amount > 0.0) w.add_uniform(e.region, e.inject_amount);
  }
}

double Engine2D::serial_seconds(const Run2DConfig& config) const {
  Workload2D w = workload_;
  double seconds = 0.0;
  for (std::uint32_t step = 0; step < config.steps; ++step) {
    apply_events(w, step);
    seconds += w.total() * machine_.t_particle;
    w.advance(config.shift_x, config.shift_y);
  }
  return seconds;
}

ModelResult Engine2D::run_static(int cores, const Run2DConfig& config) const {
  return run_diffusion(cores, config, DiffusionModelParams{0, 0.0, 1}, false);
}

ModelResult Engine2D::run_diffusion(int cores, const Run2DConfig& config,
                                    const DiffusionModelParams& lb,
                                    bool two_phase) const {
  PICPRK_EXPECTS(cores >= 1);
  const auto [px, py] = comm::near_square_factors(cores);
  const std::int64_t c = workload_.cells();
  PICPRK_EXPECTS(px <= c && py <= c);

  Workload2D w = workload_;
  std::vector<std::int64_t> xb(static_cast<std::size_t>(px) + 1);
  std::vector<std::int64_t> yb(static_cast<std::size_t>(py) + 1);
  for (int i = 0; i <= px; ++i)
    xb[static_cast<std::size_t>(i)] = i == px ? c : comm::block_range(c, px, i).lo;
  for (int j = 0; j <= py; ++j)
    yb[static_cast<std::size_t>(j)] = j == py ? c : comm::block_range(c, py, j).lo;

  ModelResult result;
  double imbalance_sum = 0.0;
  std::uint32_t samples = 0;

  std::vector<double> lb_extra(static_cast<std::size_t>(cores), 0.0);
  const double log2p = std::log2(std::max(2, cores));
  auto rank_of = [px = px](int i, int j) { return j * px + i; };

  for (std::uint32_t step = 0; step < config.steps; ++step) {
    apply_events(w, step);

    std::fill(lb_extra.begin(), lb_extra.end(), 0.0);
    if (lb.frequency > 0 && step > 0 && step % lb.frequency == 0) {
      const double decision = machine_.lb_decision_cost + log2p * machine_.alpha_inter;
      for (auto& v : lb_extra) v += decision;
      // Phase 1: x boundaries from per-processor-column loads.
      {
        std::vector<double> col_loads(static_cast<std::size_t>(px));
        double total = 0.0;
        for (int i = 0; i < px; ++i) {
          const double l = w.range_sum(xb[static_cast<std::size_t>(i)],
                                       xb[static_cast<std::size_t>(i) + 1], 0, c);
          // Whole-particle loads (trunc), matching the real driver.
          col_loads[static_cast<std::size_t>(i)] =
              static_cast<double>(static_cast<std::uint64_t>(l));
          total += l;
        }
        const auto new_xb = picprk::lb::diffuse_bounds(
            xb, col_loads, lb.threshold * total / static_cast<double>(px),
            lb.border_width);
        for (int b = 1; b < px; ++b) {
          const std::int64_t oldb = xb[static_cast<std::size_t>(b)];
          const std::int64_t newb = new_xb[static_cast<std::size_t>(b)];
          if (oldb == newb) continue;
          ++result.migrations;
          const std::int64_t m0 = std::min(oldb, newb), m1 = std::max(oldb, newb);
          for (int j = 0; j < py; ++j) {
            const std::int64_t rows = yb[static_cast<std::size_t>(j) + 1] -
                                      yb[static_cast<std::size_t>(j)];
            const double bytes =
                static_cast<double>((m1 - m0) * (rows + 1)) * machine_.cell_bytes +
                w.range_sum(m0, m1, yb[static_cast<std::size_t>(j)],
                            yb[static_cast<std::size_t>(j) + 1]) *
                    machine_.particle_bytes;
            const int ra = rank_of(b - 1, j), rb = rank_of(b, j);
            const double cost = machine_.msg_cost(bytes, machine_.same_node(ra, rb));
            lb_extra[static_cast<std::size_t>(ra)] += cost;
            lb_extra[static_cast<std::size_t>(rb)] += cost;
            result.migrated_mbytes += bytes / 1.0e6;
          }
        }
        xb = new_xb;
      }
      // Phase 2: y boundaries from per-processor-row loads.
      if (two_phase) {
        std::vector<double> row_loads(static_cast<std::size_t>(py));
        double total = 0.0;
        for (int j = 0; j < py; ++j) {
          const double l = w.range_sum(0, c, yb[static_cast<std::size_t>(j)],
                                       yb[static_cast<std::size_t>(j) + 1]);
          row_loads[static_cast<std::size_t>(j)] =
              static_cast<double>(static_cast<std::uint64_t>(l));
          total += l;
        }
        const auto new_yb = picprk::lb::diffuse_bounds(
            yb, row_loads, lb.threshold * total / static_cast<double>(py),
            lb.border_width);
        for (int b = 1; b < py; ++b) {
          const std::int64_t oldb = yb[static_cast<std::size_t>(b)];
          const std::int64_t newb = new_yb[static_cast<std::size_t>(b)];
          if (oldb == newb) continue;
          ++result.migrations;
          const std::int64_t m0 = std::min(oldb, newb), m1 = std::max(oldb, newb);
          for (int i = 0; i < px; ++i) {
            const std::int64_t cols = xb[static_cast<std::size_t>(i) + 1] -
                                      xb[static_cast<std::size_t>(i)];
            const double bytes =
                static_cast<double>((m1 - m0) * (cols + 1)) * machine_.cell_bytes +
                w.range_sum(xb[static_cast<std::size_t>(i)],
                            xb[static_cast<std::size_t>(i) + 1], m0, m1) *
                    machine_.particle_bytes;
            const int ra = rank_of(i, b - 1), rb = rank_of(i, b);
            const double cost = machine_.msg_cost(bytes, machine_.same_node(ra, rb));
            lb_extra[static_cast<std::size_t>(ra)] += cost;
            lb_extra[static_cast<std::size_t>(rb)] += cost;
            result.migrated_mbytes += bytes / 1.0e6;
          }
        }
        yb = new_yb;
      }
    }

    // Per-rank step time.
    double makespan = 0.0, max_compute = 0.0, sum_compute = 0.0, max_lb = 0.0;
    for (int j = 0; j < py; ++j) {
      for (int i = 0; i < px; ++i) {
        const int r = rank_of(i, j);
        const std::int64_t x0 = xb[static_cast<std::size_t>(i)];
        const std::int64_t x1 = xb[static_cast<std::size_t>(i) + 1];
        const std::int64_t y0 = yb[static_cast<std::size_t>(j)];
        const std::int64_t y1 = yb[static_cast<std::size_t>(j) + 1];
        const double n = w.range_sum(x0, x1, y0, y1);
        const double compute =
            n * machine_.t_particle / machine_.speed_of(r) * machine_.noise(r, step);

        double comm = 0.0;
        if (px > 1 && config.shift_x != 0) {
          // Emigrants across the right x edge (drift right assumed).
          const double out =
              w.range_sum(std::max(x0, x1 - config.shift_x), x1, y0, y1) *
              machine_.particle_bytes;
          const int right = rank_of((i + 1) % px, j);
          comm += machine_.msg_cost(out, machine_.same_node(r, right));
          if (!machine_.same_node(r, rank_of((i + px - 1) % px, j))) {
            comm += machine_.remote_delivery_overhead;
          }
          // Incoming from the left (same formula on the left block).
          const std::int64_t lx0 = xb[static_cast<std::size_t>((i + px - 1) % px)];
          const std::int64_t lx1 = xb[static_cast<std::size_t>((i + px - 1) % px) + 1];
          const double in =
              w.range_sum(std::max(lx0, lx1 - config.shift_x), lx1, y0, y1) *
              machine_.particle_bytes;
          comm += machine_.msg_cost(in, machine_.same_node(r, rank_of((i + px - 1) % px, j)));
        }
        if (py > 1 && config.shift_y != 0) {
          const std::int64_t s = std::llabs(config.shift_y);
          const double out = w.range_sum(x0, x1, std::max(y0, y1 - s), y1) *
                             machine_.particle_bytes;
          const int up = rank_of(i, (j + 1) % py);
          comm += 2.0 * machine_.msg_cost(out, machine_.same_node(r, up));
        }

        const double lb_r = lb_extra[static_cast<std::size_t>(r)];
        makespan = std::max(makespan, compute + comm + lb_r);
        max_compute = std::max(max_compute, compute);
        max_lb = std::max(max_lb, lb_r);
        sum_compute += compute;
      }
    }
    result.seconds += makespan;
    result.compute_seconds += max_compute;
    const double lb_part = std::min(max_lb, makespan - max_compute);
    result.lb_seconds += lb_part;
    result.comm_seconds += makespan - max_compute - lb_part;
    const double ratio =
        sum_compute > 0.0 ? max_compute / (sum_compute / static_cast<double>(cores)) : 1.0;
    imbalance_sum += ratio;
    ++samples;
    if (config.collect_series && step % config.sample_every == 0) {
      result.imbalance_series.push_back(ratio);
    }

    w.advance(config.shift_x, config.shift_y);
  }
  result.avg_imbalance = samples > 0 ? imbalance_sum / samples : 1.0;

  double max_particles = 0.0;
  for (int j = 0; j < py; ++j) {
    for (int i = 0; i < px; ++i) {
      max_particles = std::max(
          max_particles,
          w.range_sum(xb[static_cast<std::size_t>(i)], xb[static_cast<std::size_t>(i) + 1],
                      yb[static_cast<std::size_t>(j)], yb[static_cast<std::size_t>(j) + 1]));
    }
  }
  result.max_particles_final = max_particles;
  return result;
}

ModelResult Engine2D::run_vpr(int cores, const Run2DConfig& config,
                              const VprModelParams& params) const {
  PICPRK_EXPECTS(cores >= 1);
  PICPRK_EXPECTS(params.overdecomposition >= 1);
  const int vps = cores * params.overdecomposition;
  const auto [vpx, vpy] = comm::near_square_factors(vps);
  const std::int64_t c = workload_.cells();
  PICPRK_EXPECTS(vpx <= c && vpy <= c);

  Workload2D w = workload_;
  std::vector<std::int64_t> vxb(static_cast<std::size_t>(vpx) + 1);
  std::vector<std::int64_t> vyb(static_cast<std::size_t>(vpy) + 1);
  for (int i = 0; i <= vpx; ++i)
    vxb[static_cast<std::size_t>(i)] = i == vpx ? c : comm::block_range(c, vpx, i).lo;
  for (int j = 0; j <= vpy; ++j)
    vyb[static_cast<std::size_t>(j)] = j == vpy ? c : comm::block_range(c, vpy, j).lo;

  std::vector<int> map(static_cast<std::size_t>(vps));
  for (int v = 0; v < vps; ++v) {
    map[static_cast<std::size_t>(v)] =
        static_cast<int>((static_cast<std::int64_t>(v) * cores) / vps);
  }
  auto balancer = lb::make_strategy(params.balancer);
  PICPRK_EXPECTS(balancer->balances_placement());

  ModelResult result;
  double imbalance_sum = 0.0;
  std::uint32_t samples = 0;
  std::vector<double> vp_load(static_cast<std::size_t>(vps));
  std::vector<double> compute(static_cast<std::size_t>(cores));
  std::vector<double> comm_cost(static_cast<std::size_t>(cores));
  std::vector<double> lb_extra(static_cast<std::size_t>(cores));

  auto vp_block = [&](int v) {
    const int i = v % vpx;
    const int j = v / vpx;
    return std::array<std::int64_t, 4>{vxb[static_cast<std::size_t>(i)],
                                       vxb[static_cast<std::size_t>(i) + 1],
                                       vyb[static_cast<std::size_t>(j)],
                                       vyb[static_cast<std::size_t>(j) + 1]};
  };

  for (std::uint32_t step = 0; step < config.steps; ++step) {
    apply_events(w, step);

    std::fill(compute.begin(), compute.end(), 0.0);
    std::fill(comm_cost.begin(), comm_cost.end(), 0.0);
    std::fill(lb_extra.begin(), lb_extra.end(), 0.0);

    for (int v = 0; v < vps; ++v) {
      const auto [x0, x1, y0, y1] = vp_block(v);
      const int core = map[static_cast<std::size_t>(v)];
      const double n = w.range_sum(x0, x1, y0, y1);
      vp_load[static_cast<std::size_t>(v)] = n;
      compute[static_cast<std::size_t>(core)] += n * machine_.t_particle + machine_.vp_overhead;
      const int i = v % vpx;
      const int j = v / vpx;
      if (vpx > 1 && config.shift_x != 0) {
        const double out = w.range_sum(std::max(x0, x1 - config.shift_x), x1, y0, y1) *
                           machine_.particle_bytes;
        const int dst = map[static_cast<std::size_t>(j * vpx + (i + 1) % vpx)];
        if (dst != core) {
          const bool intra = machine_.same_node(core, dst);
          const double cost = machine_.msg_cost(out, intra);
          comm_cost[static_cast<std::size_t>(core)] += cost;
          comm_cost[static_cast<std::size_t>(dst)] += cost;
          if (!intra)
            comm_cost[static_cast<std::size_t>(dst)] += machine_.remote_delivery_overhead;
        }
      }
      if (vpy > 1 && config.shift_y != 0) {
        const std::int64_t s = std::llabs(config.shift_y);
        const double out =
            w.range_sum(x0, x1, std::max(y0, y1 - s), y1) * machine_.particle_bytes;
        const int dst = map[static_cast<std::size_t>(((j + 1) % vpy) * vpx + i)];
        if (dst != core) {
          const double cost = machine_.msg_cost(out, machine_.same_node(core, dst));
          comm_cost[static_cast<std::size_t>(core)] += cost;
          comm_cost[static_cast<std::size_t>(dst)] += cost;
        }
      }
    }

    if (params.lb_interval > 0 && step > 0 && step % params.lb_interval == 0) {
      lb::PlacementInput lb_input;
      lb_input.metric = params.measured_load ? lb::LoadMetric::kComputeSeconds
                                             : lb::LoadMetric::kParticles;
      lb_input.step = step;
      lb_input.interval_steps = params.lb_interval;
      lb_input.workers = cores;
      lb_input.parts.resize(static_cast<std::size_t>(vps));
      for (int v = 0; v < vps; ++v) {
        const int i = v % vpx;
        const int j = v / vpx;
        const int core = map[static_cast<std::size_t>(v)];
        double load = vp_load[static_cast<std::size_t>(v)];
        if (params.measured_load) load /= machine_.speed_of(core);
        lb_input.parts[static_cast<std::size_t>(v)] = lb::PartLoad{
            v, load, core,
            {j * vpx + (i + 1) % vpx, j * vpx + (i + vpx - 1) % vpx,
             ((j + 1) % vpy) * vpx + i, ((j + vpy - 1) % vpy) * vpx + i}};
      }
      const std::vector<int> remap = balancer->rebalance_placement(lb_input);
      const double decision =
          machine_.lb_stall_base + machine_.lb_stall_per_vp * static_cast<double>(vps);
      for (auto& v : lb_extra) v += decision;
      const int nodes = (cores + machine_.cores_per_node - 1) / machine_.cores_per_node;
      std::vector<double> node_bytes(static_cast<std::size_t>(nodes), 0.0);
      for (int v = 0; v < vps; ++v) {
        const int from = map[static_cast<std::size_t>(v)];
        const int to = remap[static_cast<std::size_t>(v)];
        if (from == to) continue;
        const auto [x0, x1, y0, y1] = vp_block(v);
        const double vp_bytes =
            static_cast<double>((x1 - x0 + 1) * (y1 - y0 + 1)) * machine_.cell_bytes +
            vp_load[static_cast<std::size_t>(v)] * machine_.particle_bytes;
        node_bytes[static_cast<std::size_t>(machine_.node_of(from))] += vp_bytes;
        node_bytes[static_cast<std::size_t>(machine_.node_of(to))] += vp_bytes;
        result.migrated_mbytes += vp_bytes / 1.0e6;
        ++result.migrations;
      }
      for (int core = 0; core < cores; ++core) {
        lb_extra[static_cast<std::size_t>(core)] +=
            node_bytes[static_cast<std::size_t>(machine_.node_of(core))] /
            machine_.migration_bandwidth_per_node;
      }
      map = remap;
    }

    double makespan = 0.0, max_compute = 0.0, sum_compute = 0.0, max_lb = 0.0;
    for (int core = 0; core < cores; ++core) {
      const double comp = compute[static_cast<std::size_t>(core)] /
                          machine_.speed_of(core) * machine_.noise(core, step);
      const double t = comp + comm_cost[static_cast<std::size_t>(core)] +
                       lb_extra[static_cast<std::size_t>(core)];
      makespan = std::max(makespan, t);
      max_compute = std::max(max_compute, comp);
      max_lb = std::max(max_lb, lb_extra[static_cast<std::size_t>(core)]);
      sum_compute += comp;
    }
    result.seconds += makespan;
    result.compute_seconds += max_compute;
    const double lb_part = std::min(max_lb, makespan - max_compute);
    result.lb_seconds += lb_part;
    result.comm_seconds += makespan - max_compute - lb_part;
    const double ratio =
        sum_compute > 0.0 ? max_compute / (sum_compute / static_cast<double>(cores)) : 1.0;
    imbalance_sum += ratio;
    ++samples;
    if (config.collect_series && step % config.sample_every == 0) {
      result.imbalance_series.push_back(ratio);
    }

    w.advance(config.shift_x, config.shift_y);
  }
  result.avg_imbalance = samples > 0 ? imbalance_sum / samples : 1.0;

  std::vector<double> core_particles(static_cast<std::size_t>(cores), 0.0);
  for (int v = 0; v < vps; ++v) {
    const auto [x0, x1, y0, y1] = vp_block(v);
    core_particles[static_cast<std::size_t>(map[static_cast<std::size_t>(v)])] +=
        w.range_sum(x0, x1, y0, y1);
  }
  result.max_particles_final =
      *std::max_element(core_particles.begin(), core_particles.end());
  return result;
}

}  // namespace picprk::perfsim
