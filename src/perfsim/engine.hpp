// Step-synchronous makespan engine: executes the exact workload
// evolution (ColumnWorkload) through cost models of the paper's three
// implementations at arbitrary core counts, producing the execution
// times behind Figures 5–7. Deterministic: same inputs, same curves.
//
// Model structure per time step, per core:
//   time(core) = compute(core)/speed(core)·noise(core,step) + comm(core) [+ lb(core)]
//   makespan(step) = max over cores; total = Σ makespans.
// compute is particle work (+ per-VP scheduling overhead for the vpr
// model); comm is α+β message costs for emigrant particles (intra- vs
// inter-node by the core map); lb covers decision rounds and the
// migration of subgrids/particles/VPs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "par/diffusion.hpp"
#include "perfsim/machine.hpp"
#include "perfsim/workload.hpp"

namespace picprk::perfsim {

struct RunConfig {
  std::uint32_t steps = 100;
  /// Cells the distribution shifts right per step: (2k+1).
  std::int64_t shift_per_step = 1;
  /// Collect the per-step compute-imbalance series.
  bool collect_series = false;
  std::uint32_t sample_every = 1;
};

/// y-uniform dynamic event for the model (mirrors pic::EventSchedule for
/// full-height regions).
struct EventModel {
  std::uint32_t step = 0;
  std::int64_t x0 = 0, x1 = 0;       ///< logical column range
  double inject_amount = 0.0;        ///< particles added uniformly
  double remove_fraction = 0.0;      ///< fraction removed
};

struct ModelResult {
  double seconds = 0.0;
  double compute_seconds = 0.0;  ///< Σ max-compute (breakdown)
  double comm_seconds = 0.0;     ///< Σ (makespan − max-compute) excl. LB
  double lb_seconds = 0.0;
  double avg_imbalance = 1.0;    ///< mean over steps of max/mean compute
  double max_particles_final = 0.0;  ///< per-core, end of run (§V-B metric)
  std::uint64_t migrations = 0;      ///< boundary moves or VP migrations
  double migrated_mbytes = 0.0;
  std::vector<double> imbalance_series;
};

/// Mirrors par::DiffusionParams for the model.
struct DiffusionModelParams {
  std::uint32_t frequency = 100;
  double threshold = 0.10;
  std::int64_t border_width = 1;
};

/// Mirrors par::AmpiParams for the model.
struct VprModelParams {
  int overdecomposition = 4;   ///< d
  std::uint32_t lb_interval = 100;  ///< F; 0 = never
  std::string balancer = "greedy";
  /// Balance on measured per-VP time (count / current core speed) rather
  /// than raw particle counts — what lets the runtime absorb category-1
  /// (slow core / noise) imbalance that count-based schemes cannot see.
  bool measured_load = false;
};

class Engine {
 public:
  Engine(MachineModel machine, ColumnWorkload workload);

  void set_events(std::vector<EventModel> events) { events_ = std::move(events); }

  const MachineModel& machine() const { return machine_; }

  /// Serial execution time of the same workload (speedup denominator).
  double serial_seconds(const RunConfig& config) const;

  /// Static 2-D block decomposition — the paper's "mpi-2d".
  ModelResult run_static(int cores, const RunConfig& config) const;

  /// Diffusion-balanced decomposition — the paper's "mpi-2d-LB".
  ModelResult run_diffusion(int cores, const RunConfig& config,
                            const DiffusionModelParams& lb) const;

  /// Over-decomposed runtime-balanced execution — the paper's "ampi".
  ModelResult run_vpr(int cores, const RunConfig& config,
                      const VprModelParams& params) const;

 private:
  void apply_events(ColumnWorkload& w, std::uint32_t step) const;

  MachineModel machine_;
  ColumnWorkload workload_;
  std::vector<EventModel> events_;
};

}  // namespace picprk::perfsim
