// 2-D makespan engine over Workload2D: the static and (optionally
// two-phase) diffusion policies for workloads whose skew is not
// y-uniform — rotated distributions, corner patches, y-drift. The
// column engine (engine.hpp) remains the tool for paper-scale grids;
// this one extends the model to the full §III-E space at laptop scale.
#pragma once

#include <vector>

#include <cstdint>

#include "par/diffusion.hpp"
#include "perfsim/engine.hpp"
#include "perfsim/workload2d.hpp"

namespace picprk::perfsim {

struct Run2DConfig {
  std::uint32_t steps = 100;
  std::int64_t shift_x = 1;  ///< (2k+1)
  std::int64_t shift_y = 0;  ///< m
  bool collect_series = false;
  std::uint32_t sample_every = 1;
};

/// y-capable dynamic event.
struct Event2D {
  std::uint32_t step = 0;
  pic::CellRegion region;
  double inject_amount = 0.0;
  double remove_fraction = 0.0;
};

class Engine2D {
 public:
  Engine2D(MachineModel machine, Workload2D workload);

  void set_events(std::vector<Event2D> events) { events_ = std::move(events); }

  double serial_seconds(const Run2DConfig& config) const;

  ModelResult run_static(int cores, const Run2DConfig& config) const;

  /// Diffusion LB; `two_phase` enables the y-direction phase (§IV-B).
  ModelResult run_diffusion(int cores, const Run2DConfig& config,
                            const DiffusionModelParams& lb, bool two_phase) const;

  /// Over-decomposed runtime-balanced execution (the ampi policy) on the
  /// 2-D workload — runtime balancers handle any skew direction, unlike
  /// the x-only diffusion scheme.
  ModelResult run_vpr(int cores, const Run2DConfig& config,
                      const VprModelParams& params) const;

 private:
  void apply_events(Workload2D& w, std::uint32_t step) const;

  MachineModel machine_;
  Workload2D workload_;
  std::vector<Event2D> events_;
};

}  // namespace picprk::perfsim
