#include "perfsim/workload.hpp"

#include "util/assert.hpp"

namespace picprk::perfsim {

ColumnWorkload ColumnWorkload::from_expected(const pic::InitParams& params) {
  PICPRK_EXPECTS(!params.rotate90);  // the column model assumes y-uniformity
  const std::vector<double> weights = pic::column_cell_expectations(params);
  std::vector<double> counts(static_cast<std::size_t>(params.grid.cells), 0.0);
  const double cells = static_cast<double>(params.grid.cells);
  for (std::int64_t cx = 0; cx < params.grid.cells; ++cx) {
    // Column expectation = per-cell expectation × occupied column height
    // (Patch rows are masked to the patch region).
    if (const auto* p = std::get_if<pic::Patch>(&params.distribution)) {
      if (cx >= p->region.x0 && cx < p->region.x1) {
        counts[static_cast<std::size_t>(cx)] =
            weights[static_cast<std::size_t>(cx)] *
            static_cast<double>(p->region.height());
      }
    } else {
      counts[static_cast<std::size_t>(cx)] = weights[static_cast<std::size_t>(cx)] * cells;
    }
  }
  return ColumnWorkload(std::move(counts));
}

ColumnWorkload ColumnWorkload::from_initializer(const pic::Initializer& init) {
  const std::int64_t c = init.params().grid.cells;
  std::vector<double> counts(static_cast<std::size_t>(c), 0.0);
  for (std::int64_t cx = 0; cx < c; ++cx) {
    counts[static_cast<std::size_t>(cx)] = static_cast<double>(init.column_total(cx));
  }
  return ColumnWorkload(std::move(counts));
}

ColumnWorkload::ColumnWorkload(std::vector<double> counts) : counts_(std::move(counts)) {
  PICPRK_EXPECTS(!counts_.empty());
}

double ColumnWorkload::total() const { return range_sum(0, columns()); }

std::size_t ColumnWorkload::physical(std::int64_t logical) const {
  const std::int64_t n = columns();
  std::int64_t p = (logical - offset_) % n;
  if (p < 0) p += n;
  return static_cast<std::size_t>(p);
}

double ColumnWorkload::count(std::int64_t col) const {
  PICPRK_EXPECTS(col >= 0 && col < columns());
  return counts_[physical(col)];
}

void ColumnWorkload::rebuild_prefix() const {
  prefix_.resize(counts_.size() + 1);
  prefix_[0] = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) prefix_[i + 1] = prefix_[i] + counts_[i];
  prefix_dirty_ = false;
}

double ColumnWorkload::range_sum(std::int64_t c0, std::int64_t c1) const {
  PICPRK_EXPECTS(c0 >= 0 && c0 <= c1 && c1 <= columns());
  if (c0 == c1) return 0.0;
  if (prefix_dirty_) rebuild_prefix();
  const std::int64_t n = columns();
  // Physical interval of the logical range; may wrap once.
  const auto p0 = static_cast<std::int64_t>(physical(c0));
  const std::int64_t len = c1 - c0;
  if (p0 + len <= n) {
    return prefix_[static_cast<std::size_t>(p0 + len)] - prefix_[static_cast<std::size_t>(p0)];
  }
  const double tail = prefix_[static_cast<std::size_t>(n)] - prefix_[static_cast<std::size_t>(p0)];
  const double head = prefix_[static_cast<std::size_t>(p0 + len - n)];
  return tail + head;
}

void ColumnWorkload::advance(std::int64_t shift) {
  const std::int64_t n = columns();
  offset_ = ((offset_ + shift) % n + n) % n;
}

void ColumnWorkload::add_uniform(std::int64_t x0, std::int64_t x1, double amount) {
  PICPRK_EXPECTS(x0 >= 0 && x0 < x1 && x1 <= columns());
  const double per_column = amount / static_cast<double>(x1 - x0);
  for (std::int64_t c = x0; c < x1; ++c) counts_[physical(c)] += per_column;
  prefix_dirty_ = true;
}

void ColumnWorkload::scale_range(std::int64_t x0, std::int64_t x1, double factor) {
  PICPRK_EXPECTS(x0 >= 0 && x0 < x1 && x1 <= columns());
  PICPRK_EXPECTS(factor >= 0.0);
  for (std::int64_t c = x0; c < x1; ++c) counts_[physical(c)] *= factor;
  prefix_dirty_ = true;
}

}  // namespace picprk::perfsim
