// Column workload model: the per-cell-column particle counts and their
// deterministic evolution. Under the PRK specification every particle
// hops exactly (2k+1) cells in x per step and the paper's distributions
// are uniform in y, so the whole workload evolution is a rotation of the
// column-count vector — exact, not an approximation (DESIGN.md §2).
//
// The rotation is tracked as a logical offset over a fixed array with
// prefix sums, so per-step per-rank load queries are O(1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pic/init.hpp"

namespace picprk::perfsim {

class ColumnWorkload {
 public:
  /// Continuous expectation of a distribution (suited to paper-scale
  /// grids where instantiating particles is pointless).
  static ColumnWorkload from_expected(const pic::InitParams& params);

  /// Exact realised counts of an Initializer (bit-faithful to the real
  /// drivers; used by tests to cross-validate the model).
  static ColumnWorkload from_initializer(const pic::Initializer& init);

  /// Directly from counts (tests, synthetic shapes).
  explicit ColumnWorkload(std::vector<double> counts);

  std::int64_t columns() const { return static_cast<std::int64_t>(counts_.size()); }
  double total() const;

  /// Current count in logical column `col`.
  double count(std::int64_t col) const;

  /// Sum of counts over logical columns [c0, c1), 0 <= c0 <= c1 <= columns.
  double range_sum(std::int64_t c0, std::int64_t c1) const;

  /// Advances one step: rotates the distribution `shift` columns to the
  /// right (negative = left).
  void advance(std::int64_t shift);

  /// Injects `amount` particles spread uniformly over logical columns
  /// [x0, x1) (y-uniform injection region).
  void add_uniform(std::int64_t x0, std::int64_t x1, double amount);

  /// Scales counts in logical columns [x0, x1) by `factor` (removal
  /// events: factor = 1 − fraction).
  void scale_range(std::int64_t x0, std::int64_t x1, double factor);

 private:
  std::size_t physical(std::int64_t logical) const;
  void rebuild_prefix() const;

  std::vector<double> counts_;           // physical storage
  mutable std::vector<double> prefix_;   // prefix over physical storage
  mutable bool prefix_dirty_ = true;
  std::int64_t offset_ = 0;              // logical col c -> physical (c - offset) mod n
};

}  // namespace picprk::perfsim
