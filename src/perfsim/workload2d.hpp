// Dense 2-D workload model: per-cell particle counts with their exact
// evolution (x-shift by (2k+1) and y-shift by m per step — both pure
// rotations under the specification). Complements ColumnWorkload, which
// assumes y-uniformity: this model covers rotated distributions, 2-D
// patches and y-drift, at O(cells²) memory — meant for grids up to
// ~2,000² (the laptop-validation scale), not the 12k² paper grids.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pic/init.hpp"

namespace picprk::perfsim {

class Workload2D {
 public:
  /// Continuous expectation of any distribution (rotate90 supported).
  static Workload2D from_expected(const pic::InitParams& params);

  /// Exact realised counts of an Initializer.
  static Workload2D from_initializer(const pic::Initializer& init);

  /// Directly from a row-major counts grid (tests).
  Workload2D(std::int64_t cells, std::vector<double> counts);

  std::int64_t cells() const { return cells_; }
  double total() const;

  /// Current count in logical cell (cx, cy).
  double count(std::int64_t cx, std::int64_t cy) const;

  /// Sum over the logical rectangle [x0,x1) × [y0,y1); O(1) via a
  /// summed-area table (which handles the rotation offsets).
  double range_sum(std::int64_t x0, std::int64_t x1, std::int64_t y0,
                   std::int64_t y1) const;

  /// Advances one step: shifts the distribution by (dx, dy) cells.
  void advance(std::int64_t dx, std::int64_t dy);

  /// Injects `amount` uniformly over the logical rectangle.
  void add_uniform(const pic::CellRegion& region, double amount);

  /// Scales counts in the logical rectangle (removals).
  void scale_region(const pic::CellRegion& region, double factor);

 private:
  std::size_t physical_index(std::int64_t cx, std::int64_t cy) const;
  void rebuild_prefix() const;
  double prefix_at(std::int64_t px, std::int64_t py) const;
  double physical_rect_sum(std::int64_t px0, std::int64_t px1, std::int64_t py0,
                           std::int64_t py1) const;

  std::int64_t cells_ = 0;
  std::vector<double> counts_;            // row-major physical storage
  mutable std::vector<double> prefix_;    // (C+1)² summed-area table
  mutable bool prefix_dirty_ = true;
  std::int64_t offset_x_ = 0;             // logical cx -> physical (cx - ox) mod C
  std::int64_t offset_y_ = 0;
};

}  // namespace picprk::perfsim
