// Cell-binned shared-memory PIC driver on the work-stealing pool.
//
// Particles are binned by mesh column (the natural layout when the
// charge-deposition step of a full PIC code needs cell locality). One
// task = one strip of columns; a skewed distribution (§III-E) makes task
// costs unequal, so a static strip-to-thread schedule idles threads
// exactly like the distributed baseline idles ranks — and work stealing
// removes the imbalance without any ownership migration. This is the
// shared-memory data point of the paper's future-work comparison (§VI).
#pragma once

#include <cstdint>
#include <vector>

#include "pic/simulation.hpp"
#include "ws/pool.hpp"

namespace picprk::ws {

struct WsParams {
  int workers = 2;
  /// Mesh rows per task; smaller = finer balancing, more scheduling.
  std::int64_t rows_per_task = 8;
  /// When false, tasks stay on their initial worker (static schedule).
  bool stealing = true;
};

struct WsResult {
  pic::VerifyResult verification;
  std::uint64_t expected_id_checksum = 0;
  bool ok = false;
  std::uint64_t final_particles = 0;
  double seconds = 0.0;
  std::uint64_t steals = 0;
  /// max/mean of per-worker executed-task totals over the whole run —
  /// the scheduling-level balance metric.
  double task_imbalance = 1.0;
};

/// Runs the cell-binned simulation. Identical physics and verification
/// to pic::run_serial.
WsResult run_worksteal(const pic::SimulationConfig& config, const WsParams& params);

}  // namespace picprk::ws
