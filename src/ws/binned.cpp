#include "ws/binned.hpp"

#include <algorithm>

#include "pic/charge.hpp"
#include "pic/mover.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace picprk::ws {

// Particles are binned by mesh ROW. Under the specification a particle's
// row changes only through its constant vertical speed m (its horizontal
// hops never change the row), so with m = 0 the bins are invariant and
// the whole step parallelises without any re-binning; with m ≠ 0 the
// movers are staged per task and re-binned after the parallel phase.
// Row-skewed workloads (rotate90 distributions, patches) give the rows —
// and hence the tasks — unequal costs, which is what the stealing is
// measured against.
WsResult run_worksteal(const pic::SimulationConfig& config, const WsParams& params) {
  PICPRK_EXPECTS(params.workers >= 1);
  PICPRK_EXPECTS(params.rows_per_task >= 1);

  const pic::Initializer init(config.init);
  const pic::GridSpec& grid = config.init.grid;
  const pic::AlternatingColumnCharges charges(config.init.mesh_q);
  const double dt = config.init.dt;
  const std::int64_t rows = grid.cells;
  const auto tasks = static_cast<std::size_t>(
      (rows + params.rows_per_task - 1) / params.rows_per_task);

  std::vector<std::vector<pic::Particle>> bins(static_cast<std::size_t>(rows));
  {
    auto all = init.create_all();
    for (auto& p : all) {
      bins[static_cast<std::size_t>(grid.cell_of(p.y))].push_back(p);
    }
  }
  std::uint64_t expected_sum = pic::expected_checksum(init.total());
  for (std::size_t e = 0; e < config.events.injections().size(); ++e) {
    const std::uint64_t first = config.events.injection_first_id(init, e);
    const std::uint64_t count = config.events.injection_total(init, e);
    if (count > 0) expected_sum += count * first + count * (count - 1) / 2;
  }

  WorkStealingPool pool(params.workers);
  // Per-task staging for particles whose row changed (m != 0 only).
  std::vector<std::vector<pic::Particle>> staged(tasks);

  WsResult result;
  util::Timer wall;
  std::vector<std::uint64_t> executed_totals(static_cast<std::size_t>(params.workers), 0);

  for (std::uint32_t step = 0; step < config.steps; ++step) {
    // Events (serial; rare and cheap relative to a step).
    if (!config.events.empty()) {
      for (std::size_t e = 0; e < config.events.removals().size(); ++e) {
        if (config.events.removals()[e].step != step) continue;
        const pic::CellRegion& region = config.events.removals()[e].region;
        for (const auto& bin : bins) {
          for (const auto& p : bin) {
            const auto cx = grid.cell_of(p.x);
            const auto cy = grid.cell_of(p.y);
            if (region.contains_cell(cx, cy) && config.events.removes(init, e, p.id)) {
              expected_sum -= p.id;
            }
          }
        }
      }
      for (std::int64_t r = 0; r < rows; ++r) {
        // Restrict the event application to this bin's row so injected
        // particles land directly in the right bin.
        config.events.apply_step(init, step, 0, grid.cells, r, r + 1,
                                 bins[static_cast<std::size_t>(r)]);
      }
    }

    // Parallel move phase over row strips.
    const PoolStats stats = pool.run(
        tasks,
        [&](std::size_t task, int /*worker*/) {
          const std::int64_t r0 = static_cast<std::int64_t>(task) * params.rows_per_task;
          const std::int64_t r1 = std::min(rows, r0 + params.rows_per_task);
          auto& out = staged[task];
          for (std::int64_t r = r0; r < r1; ++r) {
            auto& bin = bins[static_cast<std::size_t>(r)];
            std::size_t keep = 0;
            for (std::size_t i = 0; i < bin.size(); ++i) {
              pic::Particle p = bin[i];
              pic::move_particle(p, grid, charges, dt);
              if (grid.cell_of(p.y) == r) {
                bin[keep++] = p;
              } else {
                out.push_back(p);
              }
            }
            bin.resize(keep);
          }
        },
        params.stealing);
    result.steals += stats.steals;
    for (int w = 0; w < params.workers; ++w) {
      executed_totals[static_cast<std::size_t>(w)] +=
          stats.executed_per_worker[static_cast<std::size_t>(w)];
    }

    // Serial re-bin of the row-changers (empty when m = 0).
    for (auto& out : staged) {
      for (const auto& p : out) {
        bins[static_cast<std::size_t>(grid.cell_of(p.y))].push_back(p);
      }
      out.clear();
    }
  }
  result.seconds = wall.elapsed();

  pic::VerifyResult verify;
  std::uint64_t total = 0;
  for (const auto& bin : bins) {
    verify = pic::merge(verify, pic::verify_particles(std::span<const pic::Particle>(bin),
                                                      grid, config.steps,
                                                      config.verify_epsilon));
    total += bin.size();
  }
  result.verification = verify;
  result.expected_id_checksum = expected_sum;
  result.ok = verify.ok(expected_sum);
  result.final_particles = total;
  result.task_imbalance =
      util::imbalance_u64(std::span<const std::uint64_t>(executed_totals)).ratio;
  return result;
}

}  // namespace picprk::ws
