#include "ws/pool.hpp"

#include <atomic>
#include <deque>
#include <optional>
#include <thread>

#include <string>

#include "comm/cart.hpp"
#include "util/assert.hpp"
#include "util/first_error.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace picprk::ws {

namespace {

/// Mutex-guarded deque: owner takes from the back, thieves from the
/// front. A lock per operation is fine at the task granularities the
/// PIC drivers use (hundreds of cells per task).
class TaskDeque {
 public:
  void push(std::size_t task) {
    util::LockGuard lock(mutex_);
    deque_.push_back(task);
  }

  std::optional<std::size_t> pop_back() {
    util::LockGuard lock(mutex_);
    if (deque_.empty()) return std::nullopt;
    const std::size_t t = deque_.back();
    deque_.pop_back();
    return t;
  }

  std::optional<std::size_t> pop_front() {
    util::LockGuard lock(mutex_);
    if (deque_.empty()) return std::nullopt;
    const std::size_t t = deque_.front();
    deque_.pop_front();
    return t;
  }

 private:
  util::Mutex mutex_;
  std::deque<std::size_t> deque_ PICPRK_GUARDED_BY(mutex_);
};

}  // namespace

WorkStealingPool::WorkStealingPool(int workers, const obs::Hooks& hooks)
    : workers_(workers) {
  PICPRK_EXPECTS(workers >= 1);
  if (hooks.active()) {
    if (hooks.trace != nullptr) {
      worker_lanes_.resize(static_cast<std::size_t>(workers_), nullptr);
      for (int w = 0; w < workers_; ++w) {
        worker_lanes_[static_cast<std::size_t>(w)] =
            &hooks.trace->lane(2, "ws", w, "worker " + std::to_string(w));
      }
    }
    if (hooks.registry != nullptr) {
      tasks_counter_ = &hooks.registry->register_counter("ws/tasks");
      steals_counter_ = &hooks.registry->register_counter("ws/steals");
      run_hist_ = &hooks.registry->register_histogram("ws/run_seconds", 0.0, 0.05, 100);
    }
  }
}

PoolStats WorkStealingPool::run(std::size_t count,
                                const std::function<void(std::size_t, int)>& fn,
                                bool allow_steal) {
  PoolStats stats;
  stats.tasks = count;
  stats.executed_per_worker.assign(static_cast<std::size_t>(workers_), 0);
  stats.steals_per_worker.assign(static_cast<std::size_t>(workers_), 0);
  if (count == 0) return stats;
  if (tasks_counter_ != nullptr) tasks_counter_->add(count);

  std::vector<TaskDeque> deques(static_cast<std::size_t>(workers_));
  std::vector<int> initial_owner(count);
  for (int w = 0; w < workers_; ++w) {
    const auto range = comm::block_range(static_cast<std::int64_t>(count), workers_, w);
    for (std::int64_t t = range.lo; t < range.hi; ++t) {
      deques[static_cast<std::size_t>(w)].push(static_cast<std::size_t>(t));
      initial_owner[static_cast<std::size_t>(t)] = w;
    }
  }

  std::atomic<std::size_t> remaining{count};
  util::FirstError first_error;

  auto worker_body = [&](int w) {
    util::SplitMix64 rng(0xA11C0DEull + static_cast<std::uint64_t>(w));
    std::uint64_t executed = 0;
    // Each worker tallies its own steals into its PoolStats slot — no
    // shared atomic on the task path (summed once after the join).
    std::uint64_t stolen = 0;
    obs::Phase phase("tasks", nullptr,
                     worker_lanes_.empty() ? nullptr
                                           : worker_lanes_[static_cast<std::size_t>(w)],
                     run_hist_);
    try {
      while (remaining.load(std::memory_order_acquire) > 0 && !first_error.failed()) {
        std::optional<std::size_t> task = deques[static_cast<std::size_t>(w)].pop_back();
        if (!task && allow_steal && workers_ > 1) {
          // Steal attempt from a random victim; a couple of tries, then
          // re-check the termination condition.
          for (int attempt = 0; attempt < 2 * workers_ && !task; ++attempt) {
            const int victim =
                static_cast<int>(rng.next_below(static_cast<std::uint64_t>(workers_)));
            if (victim == w) continue;
            task = deques[static_cast<std::size_t>(victim)].pop_front();
          }
        }
        if (!task) {
          if (!allow_steal) break;  // static schedule: own deque drained
          std::this_thread::yield();
          continue;
        }
        if (initial_owner[*task] != w) ++stolen;
        fn(*task, w);
        ++executed;
        remaining.fetch_sub(1, std::memory_order_acq_rel);
      }
    } catch (...) {
      first_error.record_current();
    }
    stats.executed_per_worker[static_cast<std::size_t>(w)] = executed;
    stats.steals_per_worker[static_cast<std::size_t>(w)] = stolen;
  };

  if (workers_ == 1) {
    worker_body(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers_));
    for (int w = 0; w < workers_; ++w) threads.emplace_back(worker_body, w);
    for (auto& t : threads) t.join();
  }
  first_error.rethrow_if_any();
  PICPRK_ASSERT_MSG(remaining.load() == 0, "work-stealing pool lost tasks");
  for (const std::uint64_t s : stats.steals_per_worker) stats.steals += s;
  if (steals_counter_ != nullptr) steals_counter_->add(stats.steals);
  return stats;
}

}  // namespace picprk::ws
