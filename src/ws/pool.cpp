#include "ws/pool.hpp"

#include <atomic>
#include <deque>
#include <optional>
#include <string>
#include <thread>

#include "comm/cart.hpp"
#include "util/assert.hpp"
#include "util/first_error.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace picprk::ws {

namespace {

/// Mutex-guarded deque: owner takes from the back, thieves from the
/// front. A lock per operation is fine at the task granularities the
/// PIC drivers use (hundreds of cells per task).
class TaskDeque {
 public:
  void push(std::size_t task) {
    util::LockGuard lock(mutex_);
    deque_.push_back(task);
  }

  std::optional<std::size_t> pop_back() {
    util::LockGuard lock(mutex_);
    if (deque_.empty()) return std::nullopt;
    const std::size_t t = deque_.back();
    deque_.pop_back();
    return t;
  }

  std::optional<std::size_t> pop_front() {
    util::LockGuard lock(mutex_);
    if (deque_.empty()) return std::nullopt;
    const std::size_t t = deque_.front();
    deque_.pop_front();
    return t;
  }

  /// Abandon-everything drain (error path); returns how many tasks were
  /// still queued.
  std::size_t drain() {
    util::LockGuard lock(mutex_);
    const std::size_t n = deque_.size();
    deque_.clear();
    return n;
  }

  bool empty() {
    util::LockGuard lock(mutex_);
    return deque_.empty();
  }

 private:
  util::Mutex mutex_;
  std::deque<std::size_t> deque_ PICPRK_GUARDED_BY(mutex_);
};

}  // namespace

/// Persistent worker threads plus the per-run dispatch state. Threads
/// are spawned once at pool construction and park on `cv` between
/// run() calls (the same generation-ticket scheme as vpr's superstep
/// pool); each run publishes its task function, wakes everyone, and
/// waits for all workers to report done. The deques are members — not
/// run-locals — precisely so reuse is auditable: every dispatch ends by
/// proving (or restoring, on the error path) "all deques empty".
struct WorkStealingPool::Shared {
  explicit Shared(WorkStealingPool& p) : pool(p) {
    const auto n = static_cast<std::size_t>(pool.workers_);
    deques = std::deque<TaskDeque>(n);
    initial_owner.clear();
    executed_per_worker.assign(n, 0);
    steals_per_worker.assign(n, 0);
    threads.reserve(n);
    for (int w = 0; w < pool.workers_; ++w) {
      threads.emplace_back([this, w] { worker_loop(w); });
    }
  }

  ~Shared() {
    {
      util::LockGuard lock(mutex);
      shutdown = true;
    }
    cv.notify_all();
    for (auto& t : threads) t.join();
  }

  /// One batch: tasks already dealt into the deques by the caller.
  void dispatch(const std::function<void(std::size_t, int)>& fn_ref, bool steal) {
    {
      util::LockGuard lock(mutex);
      fn = &fn_ref;
      allow_steal = steal;
      done_count = 0;
      ++generation;
    }
    cv.notify_all();
    {
      util::LockGuard lock(mutex);
      while (done_count != pool.workers_) done_cv.wait(mutex);
      fn = nullptr;
    }
  }

  void worker_loop(int w) {
    std::uint64_t my_generation = 0;
    for (;;) {
      const std::function<void(std::size_t, int)>* body = nullptr;
      bool steal = true;
      {
        util::LockGuard lock(mutex);
        while (!shutdown && generation <= my_generation) cv.wait(mutex);
        if (shutdown) return;
        my_generation = generation;
        body = fn;
        steal = allow_steal;
      }
      run_tasks(w, *body, steal);
      {
        util::LockGuard lock(mutex);
        ++done_count;
      }
      done_cv.notify_all();
    }
  }

  /// The task loop one worker executes for one run.
  void run_tasks(int w, const std::function<void(std::size_t, int)>& body, bool steal) {
    util::SplitMix64 rng(0xA11C0DEull + static_cast<std::uint64_t>(w));
    std::uint64_t executed = 0;
    // Each worker tallies its own steals into its stats slot — no
    // shared atomic on the task path (summed once after the batch).
    std::uint64_t stolen = 0;
    obs::Phase phase("tasks", nullptr,
                     pool.worker_lanes_.empty()
                         ? nullptr
                         : pool.worker_lanes_[static_cast<std::size_t>(w)],
                     pool.run_hist_);
    try {
      while (remaining.load(std::memory_order_acquire) > 0 && !error.failed()) {
        std::optional<std::size_t> task = deques[static_cast<std::size_t>(w)].pop_back();
        if (!task && steal && pool.workers_ > 1) {
          // Steal attempt from a random victim; a couple of tries, then
          // re-check the termination condition.
          for (int attempt = 0; attempt < 2 * pool.workers_ && !task; ++attempt) {
            const int victim = static_cast<int>(
                rng.next_below(static_cast<std::uint64_t>(pool.workers_)));
            if (victim == w) continue;
            task = deques[static_cast<std::size_t>(victim)].pop_front();
          }
        }
        if (!task) {
          if (!steal) break;  // static schedule: own deque drained
          std::this_thread::yield();
          continue;
        }
        if (initial_owner[*task] != w) ++stolen;
        body(*task, w);
        ++executed;
        remaining.fetch_sub(1, std::memory_order_acq_rel);
      }
    } catch (...) {
      error.record_current();
    }
    executed_per_worker[static_cast<std::size_t>(w)] = executed;
    steals_per_worker[static_cast<std::size_t>(w)] = stolen;
  }

  WorkStealingPool& pool;
  std::vector<std::thread> threads;

  // Task queues and per-run bookkeeping. The deques are written by the
  // dispatching client before workers wake and drained to empty before
  // dispatch() returns; the per-worker tally slots are each written by
  // exactly one worker during a run and read after the batch completes.
  std::deque<TaskDeque> deques;
  std::vector<int> initial_owner;
  std::atomic<std::size_t> remaining{0};
  util::FirstError error;
  std::vector<std::uint64_t> executed_per_worker;
  std::vector<std::uint64_t> steals_per_worker;

  util::Mutex mutex;
  util::CondVar cv;       ///< workers wait here for the next batch
  util::CondVar done_cv;  ///< dispatch waits here for batch completion
  bool shutdown PICPRK_GUARDED_BY(mutex) = false;
  std::uint64_t generation PICPRK_GUARDED_BY(mutex) = 0;
  const std::function<void(std::size_t, int)>* fn PICPRK_GUARDED_BY(mutex) = nullptr;
  bool allow_steal PICPRK_GUARDED_BY(mutex) = true;
  int done_count PICPRK_GUARDED_BY(mutex) = 0;
};

WorkStealingPool::WorkStealingPool(int workers, const obs::Hooks& hooks)
    : workers_(workers) {
  PICPRK_EXPECTS(workers >= 1);
  if (hooks.active()) {
    if (hooks.trace != nullptr) {
      worker_lanes_.resize(static_cast<std::size_t>(workers_), nullptr);
      for (int w = 0; w < workers_; ++w) {
        worker_lanes_[static_cast<std::size_t>(w)] =
            &hooks.trace->lane(2, "ws", w, "worker " + std::to_string(w));
      }
    }
    if (hooks.registry != nullptr) {
      tasks_counter_ = &hooks.registry->register_counter("ws/tasks");
      steals_counter_ = &hooks.registry->register_counter("ws/steals");
      run_hist_ = &hooks.registry->register_histogram("ws/run_seconds", 0.0, 0.05, 100);
      steals_per_run_hist_ =
          &hooks.registry->register_histogram("ws/steals_per_run", 0.0, 128.0, 64);
    }
  }
  // The single-worker pool runs inline (no threads, no parking); only
  // multi-worker pools spawn the persistent crew.
  if (workers_ > 1) shared_ = std::make_unique<Shared>(*this);
}

WorkStealingPool::~WorkStealingPool() = default;

PoolStats WorkStealingPool::run(std::size_t count,
                                const std::function<void(std::size_t, int)>& fn,
                                bool allow_steal) {
  // Blockwise dealing: contiguous task ranges per worker, preserving
  // the spatial locality of adjacent tasks.
  std::vector<int> owners(count);
  for (int w = 0; w < workers_; ++w) {
    const auto range = comm::block_range(static_cast<std::int64_t>(count), workers_, w);
    for (std::int64_t t = range.lo; t < range.hi; ++t) {
      owners[static_cast<std::size_t>(t)] = w;
    }
  }
  return run_placed(count, std::span<const int>(owners), fn, allow_steal);
}

PoolStats WorkStealingPool::run_placed(std::size_t count, std::span<const int> owners,
                                       const std::function<void(std::size_t, int)>& fn,
                                       bool allow_steal) {
  PICPRK_EXPECTS(owners.size() == count);
  PoolStats stats;
  stats.tasks = count;
  stats.executed_per_worker.assign(static_cast<std::size_t>(workers_), 0);
  stats.steals_per_worker.assign(static_cast<std::size_t>(workers_), 0);
  if (count == 0) return stats;
  if (tasks_counter_ != nullptr) tasks_counter_->add(count);

  if (workers_ == 1) {
    // Inline path: no threads; the placement is necessarily worker 0.
    obs::Phase phase("tasks", nullptr,
                     worker_lanes_.empty() ? nullptr : worker_lanes_[0], run_hist_);
    for (std::size_t t = 0; t < count; ++t) {
      PICPRK_EXPECTS(owners[t] == 0);
      fn(t, 0);
      ++stats.executed_per_worker[0];
    }
    // Nothing to steal from, but the per-batch distribution still gets
    // its sample — readers can divide ws/steals_per_run's count into
    // ws/tasks without special-casing one-worker pools.
    if (steals_per_run_hist_ != nullptr) steals_per_run_hist_->observe(0.0);
    return stats;
  }

  Shared& sh = *shared_;
  // Deal the batch. The previous dispatch left every deque empty (it
  // asserts so below), so this run starts from a clean pool whatever
  // happened before — including a task exception.
  sh.initial_owner.assign(owners.begin(), owners.end());
  for (std::size_t t = 0; t < count; ++t) {
    PICPRK_EXPECTS(owners[t] >= 0 && owners[t] < workers_);
    sh.deques[static_cast<std::size_t>(owners[t])].push(t);
  }
  sh.remaining.store(count, std::memory_order_release);
  std::fill(sh.executed_per_worker.begin(), sh.executed_per_worker.end(), 0);
  std::fill(sh.steals_per_worker.begin(), sh.steals_per_worker.end(), 0);

  sh.dispatch(fn, allow_steal);

  for (int w = 0; w < workers_; ++w) {
    stats.executed_per_worker[static_cast<std::size_t>(w)] =
        sh.executed_per_worker[static_cast<std::size_t>(w)];
    stats.steals_per_worker[static_cast<std::size_t>(w)] =
        sh.steals_per_worker[static_cast<std::size_t>(w)];
    stats.steals += stats.steals_per_worker[static_cast<std::size_t>(w)];
  }

  if (sh.error.failed()) {
    // Queue-drain path: abandon whatever the failed batch left queued
    // so the *next* client attaches to a clean pool, then propagate the
    // first exception (record/rethrow clears it — the pool stays
    // reusable).
    std::size_t abandoned = 0;
    for (auto& d : sh.deques) abandoned += d.drain();
    sh.remaining.store(0, std::memory_order_release);
    PICPRK_ASSERT_MSG(abandoned <= count, "work-stealing pool invented tasks");
    sh.error.rethrow_if_any();
  }
  PICPRK_ASSERT_MSG(sh.remaining.load() == 0, "work-stealing pool lost tasks");
  for (auto& d : sh.deques) {
    PICPRK_ASSERT_MSG(d.empty(), "work-stealing pool left tasks queued");
  }
  if (steals_counter_ != nullptr) steals_counter_->add(stats.steals);
  // Per-batch observation alongside the pool-lifetime aggregate: the
  // histogram answers "how much did *this* dispatch steal", which the
  // cumulative ws/steals counter cannot.
  if (steals_per_run_hist_ != nullptr) {
    steals_per_run_hist_->observe(static_cast<double>(stats.steals));
  }
  return stats;
}

}  // namespace picprk::ws
