// A work-stealing task pool: the shared-memory counterpart of the
// paper's dynamic-load-balancing study (§VI names task-based runtimes —
// Charm++, HPX, X10 — as future comparison targets; this module provides
// the minimal such runtime so the kernel can be driven by dynamic
// scheduling instead of ownership migration).
//
// Tasks are indices [0, count). By default they are dealt blockwise to
// the workers' deques (preserving spatial locality of adjacent tasks);
// run_placed() instead takes an explicit initial-owner map — the hook
// the svc job server uses to apply a cross-job lb:: placement before
// stealing smooths the residue. Each worker pops from the back of its
// own deque and steals from the front of a random victim when empty —
// the classic owner-LIFO/thief-FIFO policy.
//
// The pool is a long-lived, multi-client resource (docs/SERVICE.md):
// worker threads are spawned once at construction and parked between
// run() calls, every run() leaves the deques drained — including runs
// that end in a task exception — and per-run statistics start from
// zero, so a second client attaching after another drains sees exactly
// the pool a fresh construction would give it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "obs/phase.hpp"

namespace picprk::ws {

struct PoolStats {
  std::uint64_t tasks = 0;
  std::uint64_t steals = 0;  ///< tasks executed by a non-initial owner
  std::vector<std::uint64_t> executed_per_worker;
  /// Steals per thief: which workers ran out of local work and raided.
  /// steals is the sum of this vector.
  std::vector<std::uint64_t> steals_per_worker;
};

class WorkStealingPool {
 public:
  /// Spawns the (persistent) worker threads. `hooks` (optional) attaches
  /// the pool to an obs registry/trace: the pool registers its
  /// task/steal counters and one trace lane per worker at construction,
  /// before any task runs.
  explicit WorkStealingPool(int workers, const obs::Hooks& hooks = {});
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  int workers() const { return workers_; }

  /// Runs fn(task, worker) for every task in [0, count) exactly once;
  /// blocks until all complete. Tasks are dealt blockwise (task t
  /// initially owned by worker t·W/count). Exceptions from tasks
  /// propagate (first one wins); the pool drains and stays reusable.
  /// When `allow_steal` is false the pool degrades to a static
  /// blockwise schedule — the baseline the stealing is measured
  /// against.
  PoolStats run(std::size_t count, const std::function<void(std::size_t, int)>& fn,
                bool allow_steal = true);

  /// Like run(), but task t is initially dealt to worker owners[t] — an
  /// externally decided placement (e.g. an lb::Strategy plan over jobs
  /// as super-VPs). owners.size() must equal count and every entry must
  /// be a valid worker id. With allow_steal=false the placement is
  /// executed verbatim; with stealing, idle workers may still raid.
  PoolStats run_placed(std::size_t count, std::span<const int> owners,
                       const std::function<void(std::size_t, int)>& fn,
                       bool allow_steal = true);

 private:
  struct Shared;  ///< persistent threads + dispatch state (pool.cpp)

  int workers_;
  std::unique_ptr<Shared> shared_;
  // Telemetry handles (null when constructed without hooks).
  std::vector<obs::TraceLane*> worker_lanes_;
  obs::Counter* tasks_counter_ = nullptr;
  obs::Counter* steals_counter_ = nullptr;
  obs::Histogram* run_hist_ = nullptr;
  /// Steal count of each run/run_placed batch — the per-dispatch
  /// distribution, next to the pool-lifetime ws/steals aggregate.
  obs::Histogram* steals_per_run_hist_ = nullptr;
};

}  // namespace picprk::ws
