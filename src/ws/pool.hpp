// A work-stealing task pool: the shared-memory counterpart of the
// paper's dynamic-load-balancing study (§VI names task-based runtimes —
// Charm++, HPX, X10 — as future comparison targets; this module provides
// the minimal such runtime so the kernel can be driven by dynamic
// scheduling instead of ownership migration).
//
// Tasks are indices [0, count). They are dealt blockwise to the workers'
// deques (preserving spatial locality of adjacent tasks); each worker
// pops from the back of its own deque and steals from the front of a
// random victim when empty — the classic owner-LIFO/thief-FIFO policy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace picprk::ws {

struct PoolStats {
  std::uint64_t tasks = 0;
  std::uint64_t steals = 0;  ///< tasks executed by a non-initial owner
  std::vector<std::uint64_t> executed_per_worker;
};

class WorkStealingPool {
 public:
  explicit WorkStealingPool(int workers);

  int workers() const { return workers_; }

  /// Runs fn(task, worker) for every task in [0, count) exactly once;
  /// blocks until all complete. Exceptions from tasks propagate (first
  /// one wins). When `allow_steal` is false the pool degrades to a
  /// static blockwise schedule — the baseline the stealing is measured
  /// against.
  PoolStats run(std::size_t count, const std::function<void(std::size_t, int)>& fn,
                bool allow_steal = true);

 private:
  int workers_;
};

}  // namespace picprk::ws
