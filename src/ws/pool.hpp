// A work-stealing task pool: the shared-memory counterpart of the
// paper's dynamic-load-balancing study (§VI names task-based runtimes —
// Charm++, HPX, X10 — as future comparison targets; this module provides
// the minimal such runtime so the kernel can be driven by dynamic
// scheduling instead of ownership migration).
//
// Tasks are indices [0, count). They are dealt blockwise to the workers'
// deques (preserving spatial locality of adjacent tasks); each worker
// pops from the back of its own deque and steals from the front of a
// random victim when empty — the classic owner-LIFO/thief-FIFO policy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "obs/phase.hpp"

namespace picprk::ws {

struct PoolStats {
  std::uint64_t tasks = 0;
  std::uint64_t steals = 0;  ///< tasks executed by a non-initial owner
  std::vector<std::uint64_t> executed_per_worker;
  /// Steals per thief: which workers ran out of local work and raided.
  /// steals is the sum of this vector.
  std::vector<std::uint64_t> steals_per_worker;
};

class WorkStealingPool {
 public:
  /// `hooks` (optional) attaches the pool to an obs registry/trace: the
  /// pool registers its task/steal counters and one trace lane per
  /// worker at construction, before any task runs.
  explicit WorkStealingPool(int workers, const obs::Hooks& hooks = {});

  int workers() const { return workers_; }

  /// Runs fn(task, worker) for every task in [0, count) exactly once;
  /// blocks until all complete. Exceptions from tasks propagate (first
  /// one wins). When `allow_steal` is false the pool degrades to a
  /// static blockwise schedule — the baseline the stealing is measured
  /// against.
  PoolStats run(std::size_t count, const std::function<void(std::size_t, int)>& fn,
                bool allow_steal = true);

 private:
  int workers_;
  // Telemetry handles (null when constructed without hooks).
  std::vector<obs::TraceLane*> worker_lanes_;
  obs::Counter* tasks_counter_ = nullptr;
  obs::Counter* steals_counter_ = nullptr;
  obs::Histogram* run_hist_ = nullptr;
};

}  // namespace picprk::ws
