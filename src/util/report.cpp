#include "util/report.hpp"

#include <sstream>

#include "util/assert.hpp"
#include "util/table.hpp"

namespace picprk::util {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), columns_(header.size()) {
  PICPRK_EXPECTS(!header.empty());
  if (out_) write_row(header);
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  PICPRK_EXPECTS(cells.size() == columns_);
  write_row(cells);
  ++rows_;
}

void CsvWriter::add_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    std::ostringstream os;
    os << v;
    cells.push_back(os.str());
  }
  add_row(cells);
}

std::string JsonObject::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

void JsonObject::add_raw(const std::string& key, std::string rendered) {
  members_.emplace_back(key, std::move(rendered));
}

JsonObject& JsonObject::add(const std::string& key, double value) {
  std::ostringstream os;
  os << value;
  add_raw(key, os.str());
  return *this;
}

JsonObject& JsonObject::add(const std::string& key, std::int64_t value) {
  add_raw(key, std::to_string(value));
  return *this;
}

JsonObject& JsonObject::add(const std::string& key, std::uint64_t value) {
  add_raw(key, std::to_string(value));
  return *this;
}

JsonObject& JsonObject::add(const std::string& key, bool value) {
  add_raw(key, value ? "true" : "false");
  return *this;
}

JsonObject& JsonObject::add(const std::string& key, const std::string& value) {
  add_raw(key, "\"" + escape(value) + "\"");
  return *this;
}

JsonObject& JsonObject::add(const std::string& key, const std::vector<double>& values) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << ',';
    os << values[i];
  }
  os << ']';
  add_raw(key, os.str());
  return *this;
}

JsonObject& JsonObject::add(const std::string& key, const JsonObject& child) {
  add_raw(key, child.to_string());
  return *this;
}

JsonObject& JsonObject::add(const std::string& key, const std::vector<JsonObject>& children) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (i) os << ',';
    os << children[i].to_string();
  }
  os << ']';
  add_raw(key, os.str());
  return *this;
}

std::string JsonObject::to_string(int indent) const {
  std::ostringstream os;
  const std::string pad(indent > 0 ? static_cast<std::size_t>(indent) : 0, ' ');
  os << '{';
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (i) os << ',';
    if (indent > 0) os << '\n' << pad;
    os << '"' << escape(members_[i].first) << "\":" << (indent > 0 ? " " : "")
       << members_[i].second;
  }
  if (indent > 0 && !members_.empty()) os << '\n';
  os << '}';
  return os.str();
}

bool write_json_file(const std::string& path, const JsonObject& object) {
  std::ofstream out(path);
  if (!out) return false;
  out << object.to_string(2) << '\n';
  return static_cast<bool>(out);
}

ResultLine::ResultLine(const std::string& impl) : line_("RESULT impl=" + impl) {}

ResultLine& ResultLine::add(const std::string& key, const std::string& value) {
  line_ += ' ' + key + '=' + value;
  return *this;
}

ResultLine& ResultLine::add(const std::string& key, const char* value) {
  return add(key, std::string(value));
}

ResultLine& ResultLine::add(const std::string& key, std::uint64_t value) {
  return add(key, std::to_string(value));
}

ResultLine& ResultLine::add(const std::string& key, std::int64_t value) {
  return add(key, std::to_string(value));
}

ResultLine& ResultLine::add(const std::string& key, int value) {
  return add(key, std::to_string(value));
}

ResultLine& ResultLine::add(const std::string& key, double value) {
  return add(key, Table::fmt(value, 6));
}

std::string ResultLine::str() const { return line_; }

}  // namespace picprk::util
