// Statistics helpers used by the load-balancing logic, the benchmark
// harnesses and the tests: running accumulators, percentiles, and the
// imbalance metrics the paper reasons about (max/mean particle counts).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace picprk::util {

/// Streaming accumulator: count/mean/variance (Welford), min/max, sum.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Load-imbalance summary over a vector of per-worker loads.
struct LoadImbalance {
  double max = 0.0;
  double mean = 0.0;
  double min = 0.0;
  /// max/mean; 1.0 is perfect balance. The figure the paper quotes
  /// ("max particles per core" vs ideal) is max and mean here.
  double ratio = 1.0;
  /// (max - mean)/max in [0,1): fraction of the critical path wasted.
  double lost_fraction = 0.0;
};

LoadImbalance imbalance(std::span<const double> loads);
LoadImbalance imbalance_u64(std::span<const std::uint64_t> loads);

/// Percentile with linear interpolation; `p` is clamped into [0,100].
/// Sorts a copy. Degenerate samples are handled gracefully: an empty
/// sample yields 0.0 and a single-element sample yields that element for
/// every p, so callers summarising short runs need no special cases.
double percentile(std::vector<double> values, double p);

/// Quantile of a fixed-width bucketed sample: `counts[i]` observations
/// fell into bucket i of the equal-width partition of [lo, hi). Linear
/// interpolation inside the bucket containing the rank; an empty
/// histogram yields `lo`. Shared by util::Histogram and the obs
/// subsystem's atomic histograms so both report the same quantiles.
double histogram_quantile(std::span<const std::uint64_t> counts, double lo, double hi,
                          double p);

/// Fixed-width histogram over [lo, hi); values outside are clamped into
/// the first/last bucket. Used by the distribution-gallery bench.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x, std::uint64_t weight = 1);
  std::span<const std::uint64_t> counts() const { return counts_; }
  double bucket_low(std::size_t i) const;
  std::uint64_t total() const { return total_; }

  /// Interpolated quantile of the bucketed sample (histogram_quantile).
  double quantile(double p) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace picprk::util
