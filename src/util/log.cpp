#include "util/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string_view>

namespace picprk::util {

namespace {

LogLevel parse_level(std::string_view s) {
  if (s == "trace") return LogLevel::Trace;
  if (s == "debug") return LogLevel::Debug;
  if (s == "info") return LogLevel::Info;
  if (s == "warn") return LogLevel::Warn;
  if (s == "error") return LogLevel::Error;
  if (s == "off") return LogLevel::Off;
  return LogLevel::Warn;
}

LogLevel initial_level() {
  if (const char* env = std::getenv("PICPRK_LOG")) return parse_level(env);
  return LogLevel::Warn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(initial_level())};
  return level;
}

std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

void log_line(LogLevel level, const std::string& text) {
  std::scoped_lock lock(sink_mutex());
  std::cerr << '[' << to_string(level) << "] " << text << '\n';
}

}  // namespace picprk::util
