// A small command-line option parser for the examples and bench harnesses.
// Supports --key value, --key=value, boolean flags, typed defaults and an
// auto-generated --help. Unknown options are an error (they usually mean a
// typo in an experiment sweep, which would silently invalidate results).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace picprk::util {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Registers an option with a default value; `help` appears in --help.
  void add_flag(const std::string& name, bool default_value, const std::string& help);
  void add_int(const std::string& name, std::int64_t default_value, const std::string& help);
  void add_double(const std::string& name, double default_value, const std::string& help);
  void add_string(const std::string& name, std::string default_value, const std::string& help);

  /// Parses argv. Returns false (after printing usage) when --help was
  /// requested; throws std::invalid_argument on malformed input.
  bool parse(int argc, const char* const* argv);

  bool get_flag(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::string get_string(const std::string& name) const;

  /// True when the user supplied the option explicitly.
  bool supplied(const std::string& name) const;

  std::string usage() const;

 private:
  enum class Kind { Flag, Int, Double, String };
  struct Option {
    Kind kind;
    std::string help;
    std::string value;     // textual current value
    std::string def;       // textual default
    bool supplied = false;
  };

  const Option& lookup(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace picprk::util
