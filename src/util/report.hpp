// Machine-readable experiment output: a minimal CSV writer and a JSON
// builder for result records, so bench runs can be archived and
// re-plotted without scraping stdout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace picprk::util {

/// RFC-4180-ish CSV writer: quotes fields containing separators or
/// quotes, doubles embedded quotes.
class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// True when the file opened successfully.
  bool ok() const { return static_cast<bool>(out_); }

  void add_row(const std::vector<std::string>& cells);

  /// Convenience for numeric rows.
  void add_row(const std::vector<double>& values);

  std::size_t rows_written() const { return rows_; }

  static std::string escape(const std::string& field);

 private:
  void write_row(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

/// Minimal JSON value builder — enough structure for result records
/// (objects, arrays of numbers, scalars); not a general JSON library.
class JsonObject {
 public:
  JsonObject& add(const std::string& key, double value);
  JsonObject& add(const std::string& key, std::int64_t value);
  JsonObject& add(const std::string& key, std::uint64_t value);
  JsonObject& add(const std::string& key, bool value);
  JsonObject& add(const std::string& key, const std::string& value);
  JsonObject& add(const std::string& key, const std::vector<double>& values);
  JsonObject& add(const std::string& key, const JsonObject& child);
  JsonObject& add(const std::string& key, const std::vector<JsonObject>& children);

  /// Serialises; `indent` > 0 pretty-prints.
  std::string to_string(int indent = 0) const;

  static std::string escape(const std::string& s);

 private:
  void add_raw(const std::string& key, std::string rendered);

  std::vector<std::pair<std::string, std::string>> members_;
};

/// Writes a JSON document to a file; returns success.
bool write_json_file(const std::string& path, const JsonObject& object);

/// Builder for the one-line machine summary every picprk entry point
/// emits ("RESULT impl=... status=... key=value ..."). Keys keep
/// insertion order; values are rendered once, here, so the CLI, the job
/// server and the engine facade cannot drift apart in format.
class ResultLine {
 public:
  explicit ResultLine(const std::string& impl);

  ResultLine& add(const std::string& key, const std::string& value);
  ResultLine& add(const std::string& key, const char* value);
  ResultLine& add(const std::string& key, std::uint64_t value);
  ResultLine& add(const std::string& key, std::int64_t value);
  ResultLine& add(const std::string& key, int value);
  /// Doubles render via Table::fmt with 6 significant digits — the
  /// format the chaos-soak and CI greps have always parsed.
  ResultLine& add(const std::string& key, double value);

  /// "RESULT impl=... k=v ..." (no trailing newline).
  std::string str() const;

 private:
  std::string line_;
};

}  // namespace picprk::util
