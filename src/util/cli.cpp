#include "util/cli.hpp"

#include <iostream>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace picprk::util {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

namespace {
std::string kind_name(int kind) {
  switch (kind) {
    case 0: return "flag";
    case 1: return "int";
    case 2: return "double";
    default: return "string";
  }
}
}  // namespace

void ArgParser::add_flag(const std::string& name, bool default_value,
                         const std::string& help) {
  PICPRK_EXPECTS(!options_.contains(name));
  options_[name] = Option{Kind::Flag, help, default_value ? "true" : "false",
                          default_value ? "true" : "false"};
  order_.push_back(name);
}

void ArgParser::add_int(const std::string& name, std::int64_t default_value,
                        const std::string& help) {
  PICPRK_EXPECTS(!options_.contains(name));
  options_[name] =
      Option{Kind::Int, help, std::to_string(default_value), std::to_string(default_value)};
  order_.push_back(name);
}

void ArgParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  PICPRK_EXPECTS(!options_.contains(name));
  std::ostringstream os;
  os << default_value;
  options_[name] = Option{Kind::Double, help, os.str(), os.str()};
  order_.push_back(name);
}

void ArgParser::add_string(const std::string& name, std::string default_value,
                           const std::string& help) {
  PICPRK_EXPECTS(!options_.contains(name));
  options_[name] = Option{Kind::String, help, default_value, default_value};
  order_.push_back(name);
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    std::string name = arg.substr(2);
    std::optional<std::string> value;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    auto it = options_.find(name);
    if (it == options_.end()) {
      throw std::invalid_argument("unknown option --" + name + "\n" + usage());
    }
    Option& opt = it->second;
    if (!value) {
      if (opt.kind == Kind::Flag) {
        value = "true";
      } else {
        if (i + 1 >= argc)
          throw std::invalid_argument("missing value for --" + name);
        value = argv[++i];
      }
    }
    // Validate typed values eagerly so errors surface at startup.
    try {
      switch (opt.kind) {
        case Kind::Flag:
          if (*value != "true" && *value != "false")
            throw std::invalid_argument("flag must be true/false");
          break;
        case Kind::Int:
          (void)std::stoll(*value);
          break;
        case Kind::Double:
          (void)std::stod(*value);
          break;
        case Kind::String:
          break;
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("bad " + kind_name(static_cast<int>(opt.kind)) +
                                  " value for --" + name + ": " + *value);
    }
    opt.value = *value;
    opt.supplied = true;
  }
  return true;
}

const ArgParser::Option& ArgParser::lookup(const std::string& name, Kind kind) const {
  auto it = options_.find(name);
  PICPRK_ASSERT_MSG(it != options_.end(), "option not registered: " + name);
  PICPRK_ASSERT_MSG(it->second.kind == kind, "wrong type for option: " + name);
  return it->second;
}

bool ArgParser::get_flag(const std::string& name) const {
  return lookup(name, Kind::Flag).value == "true";
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return std::stoll(lookup(name, Kind::Int).value);
}

double ArgParser::get_double(const std::string& name) const {
  return std::stod(lookup(name, Kind::Double).value);
}

std::string ArgParser::get_string(const std::string& name) const {
  return lookup(name, Kind::String).value;
}

bool ArgParser::supplied(const std::string& name) const {
  auto it = options_.find(name);
  return it != options_.end() && it->second.supplied;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    os << "  --" << name;
    if (opt.kind != Kind::Flag) os << " <" << kind_name(static_cast<int>(opt.kind)) << '>';
    os << "  " << opt.help << " (default: " << opt.def << ")\n";
  }
  return os.str();
}

}  // namespace picprk::util
