#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace picprk::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PICPRK_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  PICPRK_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_u64(std::uint64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void print_series_csv(std::ostream& os, const std::vector<Series>& series) {
  for (const auto& s : series) {
    PICPRK_EXPECTS(s.x.size() == s.y.size());
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      os << "# series," << s.name << ',' << s.x[i] << ',' << s.y[i] << '\n';
    }
  }
}

}  // namespace picprk::util
