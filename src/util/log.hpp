// Minimal thread-safe leveled logger. The PRK implementations log load
// balancing decisions and migration volumes at Debug level; benches and
// examples log at Info. A global level keeps hot paths cheap: the macro
// skips message formatting entirely when the level is disabled.
#pragma once

#include <sstream>
#include <string>

namespace picprk::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Returns the current global log level (default: Warn, override with
/// environment variable PICPRK_LOG=trace|debug|info|warn|error|off).
LogLevel log_level();

/// Sets the global log level programmatically.
void set_log_level(LogLevel level);

/// Emits one line to stderr with a level prefix; serialized across threads.
void log_line(LogLevel level, const std::string& text);

const char* to_string(LogLevel level);

}  // namespace picprk::util

#define PICPRK_LOG(lvl, expr)                                   \
  do {                                                          \
    if (static_cast<int>(lvl) >=                                \
        static_cast<int>(::picprk::util::log_level())) {        \
      std::ostringstream _picprk_os;                            \
      _picprk_os << expr;                                       \
      ::picprk::util::log_line(lvl, _picprk_os.str());          \
    }                                                           \
  } while (0)

#define PICPRK_TRACE(expr) PICPRK_LOG(::picprk::util::LogLevel::Trace, expr)
#define PICPRK_DEBUG(expr) PICPRK_LOG(::picprk::util::LogLevel::Debug, expr)
#define PICPRK_INFO(expr) PICPRK_LOG(::picprk::util::LogLevel::Info, expr)
#define PICPRK_WARN(expr) PICPRK_LOG(::picprk::util::LogLevel::Warn, expr)
#define PICPRK_ERROR(expr) PICPRK_LOG(::picprk::util::LogLevel::Error, expr)
