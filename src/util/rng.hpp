// Deterministic random number generation for the PRK.
//
// Two flavours:
//  * SplitMix64 — a tiny sequential PRNG for places where a stream is fine.
//  * CounterRng — a stateless counter-based generator (hash of
//    (seed, key0, key1, counter)) so that the random draw for a given mesh
//    cell is a pure function of the cell coordinates.  This is what makes
//    parallel initialisation bit-identical to serial initialisation
//    regardless of the domain decomposition — the property the PIC PRK's
//    verification scheme depends on.  The official PRK achieves the same
//    via a per-cell LCG "random_draw"; we use a stronger mix.
#pragma once

#include <cstdint>

namespace picprk::util {

/// SplitMix64 (Steele, Lea, Flood 2014). Passes BigCrush; one 64-bit word
/// of state; used to seed and for sequential sampling.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, bound) with Lemire's multiply-shift reduction
  /// (negligible bias for the bounds used here).
  std::uint64_t next_below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

 private:
  std::uint64_t state_;
};

/// Stateless mixing function: full-avalanche finalizer applied to a
/// combination of four 64-bit words. The basis of CounterRng.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

/// Counter-based RNG keyed by (seed, key0, key1). Each draw i is
/// hash(seed, key0, key1, i) — no state, safe to evaluate from any thread
/// for any cell in any order.
class CounterRng {
 public:
  CounterRng(std::uint64_t seed, std::uint64_t key0, std::uint64_t key1)
      : base_(mix64(seed ^ mix64(key0 ^ 0x9E3779B97F4A7C15ull) ^
                    mix64(key1 + 0x165667B19E3779F9ull))) {}

  std::uint64_t at(std::uint64_t counter) const {
    return mix64(base_ + counter * 0x9E3779B97F4A7C15ull);
  }

  double double_at(std::uint64_t counter) const {
    return static_cast<double>(at(counter) >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t base_;
};

/// Deterministic stochastic rounding of a non-negative expectation `mu`:
/// returns floor(mu), plus one with probability frac(mu), decided by the
/// per-cell hash draw `u` in [0,1). Used to turn continuous particle
/// densities into integer per-cell counts while keeping the grand total
/// within one particle per cell of the requested n and keeping every
/// cell's count a pure function of its coordinates.
inline std::uint64_t stochastic_round(double mu, double u) {
  const auto base = static_cast<std::uint64_t>(mu);
  const double frac = mu - static_cast<double>(base);
  return base + (u < frac ? 1u : 0u);
}

}  // namespace picprk::util
