// Wall-clock timing helpers.
#pragma once

#include <chrono>

namespace picprk::util {

/// Monotonic wall-clock timer with second-granularity doubles.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates time across multiple start/stop intervals; used for the
/// per-phase breakdowns (compute / exchange / load-balance) the drivers
/// report.
class PhaseTimer {
 public:
  void start() { t_.reset(); running_ = true; }

  void stop() {
    if (running_) {
      total_ += t_.elapsed();
      running_ = false;
    }
  }

  double total() const { return total_; }

 private:
  Timer t_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace picprk::util
