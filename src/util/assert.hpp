// Contract-checking macros in the spirit of the C++ Core Guidelines
// (I.6 Expects, I.8 Ensures). Violations throw a typed, catchable
// picprk::util::AssertionError so that unit tests can assert on them and
// the fault-tolerance recovery loop (src/ft) can degrade gracefully
// instead of tearing the process down. They are enabled in all build
// types because the PRK is a correctness-measuring tool and silent
// corruption defeats its purpose.
//
// Legacy hard-abort behaviour is still available for debugging (an abort
// leaves a core dump at the exact failure point):
//  * compile-time: -DPICPRK_ASSERT_ABORT, or
//  * run-time: environment variable PICPRK_ASSERT_ABORT=1.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace picprk::util {

/// Thrown when a precondition, postcondition or internal invariant fails.
/// Carries the structured failure location so handlers (recovery loop,
/// drivers, tests) can report or react without parsing what().
class AssertionError : public std::logic_error {
 public:
  AssertionError(const char* kind, const char* expr,
                 const std::source_location& loc, const std::string& msg)
      : std::logic_error(format(kind, expr, loc, msg)),
        kind_(kind),
        expression_(expr),
        file_(loc.file_name()),
        line_(loc.line()),
        message_(msg) {}

  /// "Precondition", "Postcondition" or "Invariant".
  const char* kind() const noexcept { return kind_; }
  /// The failed expression, verbatim.
  const char* expression() const noexcept { return expression_; }
  const char* file() const noexcept { return file_; }
  unsigned line() const noexcept { return line_; }
  /// The optional explanatory message (empty if none was given).
  const std::string& message() const noexcept { return message_; }

 private:
  static std::string format(const char* kind, const char* expr,
                            const std::source_location& loc,
                            const std::string& msg) {
    std::ostringstream os;
    os << kind << " failed: (" << expr << ") at " << loc.file_name() << ':'
       << loc.line() << " in " << loc.function_name();
    if (!msg.empty()) os << " — " << msg;
    return os.str();
  }

  const char* kind_;
  const char* expression_;
  const char* file_;
  unsigned line_;
  std::string message_;
};

namespace detail {

/// Whether contract violations should abort instead of throw. The env
/// variable is read once; the compile-time define wins unconditionally.
inline bool assert_aborts() {
#ifdef PICPRK_ASSERT_ABORT
  return true;
#else
  static const bool aborts = [] {
    const char* env = std::getenv("PICPRK_ASSERT_ABORT");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }();
  return aborts;
#endif
}

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const std::source_location& loc,
                                       const std::string& msg = {}) {
  AssertionError error(kind, expr, loc, msg);
  if (assert_aborts()) {
    std::fputs(error.what(), stderr);
    std::fputc('\n', stderr);
    std::abort();
  }
  throw error;
}

}  // namespace detail

}  // namespace picprk::util

namespace picprk {
/// Historical name; AssertionError is the same type.
using ContractViolation = util::AssertionError;
}  // namespace picprk

/// Precondition check: argument validation at API boundaries.
#define PICPRK_EXPECTS(cond)                                          \
  do {                                                                \
    if (!(cond))                                                      \
      ::picprk::util::detail::contract_fail("Precondition", #cond,    \
                                      std::source_location::current()); \
  } while (0)

/// Postcondition check.
#define PICPRK_ENSURES(cond)                                          \
  do {                                                                \
    if (!(cond))                                                      \
      ::picprk::util::detail::contract_fail("Postcondition", #cond,   \
                                      std::source_location::current()); \
  } while (0)

/// Internal invariant check with an explanatory message.
#define PICPRK_ASSERT_MSG(cond, msg)                                  \
  do {                                                                \
    if (!(cond))                                                      \
      ::picprk::util::detail::contract_fail("Invariant", #cond,       \
                                      std::source_location::current(), \
                                      (msg));                         \
  } while (0)

/// Internal invariant check.
#define PICPRK_ASSERT(cond) PICPRK_ASSERT_MSG(cond, std::string{})
