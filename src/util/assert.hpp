// Contract-checking macros in the spirit of the C++ Core Guidelines
// (I.6 Expects, I.8 Ensures). Violations throw so that unit tests can
// assert on them; they are enabled in all build types because the PRK is
// a correctness-measuring tool and silent corruption defeats its purpose.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace picprk {

/// Thrown when a precondition, postcondition or internal invariant fails.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expr,
                    const std::source_location& loc, const std::string& msg)
      : std::logic_error(format(kind, expr, loc, msg)) {}

 private:
  static std::string format(const char* kind, const char* expr,
                            const std::source_location& loc,
                            const std::string& msg) {
    std::ostringstream os;
    os << kind << " failed: (" << expr << ") at " << loc.file_name() << ':'
       << loc.line() << " in " << loc.function_name();
    if (!msg.empty()) os << " — " << msg;
    return os.str();
  }
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const std::source_location& loc,
                                       const std::string& msg = {}) {
  throw ContractViolation(kind, expr, loc, msg);
}
}  // namespace detail

}  // namespace picprk

/// Precondition check: argument validation at API boundaries.
#define PICPRK_EXPECTS(cond)                                          \
  do {                                                                \
    if (!(cond))                                                      \
      ::picprk::detail::contract_fail("Precondition", #cond,          \
                                      std::source_location::current()); \
  } while (0)

/// Postcondition check.
#define PICPRK_ENSURES(cond)                                          \
  do {                                                                \
    if (!(cond))                                                      \
      ::picprk::detail::contract_fail("Postcondition", #cond,         \
                                      std::source_location::current()); \
  } while (0)

/// Internal invariant check with an explanatory message.
#define PICPRK_ASSERT_MSG(cond, msg)                                  \
  do {                                                                \
    if (!(cond))                                                      \
      ::picprk::detail::contract_fail("Invariant", #cond,             \
                                      std::source_location::current(), \
                                      (msg));                         \
  } while (0)

/// Internal invariant check.
#define PICPRK_ASSERT(cond) PICPRK_ASSERT_MSG(cond, std::string{})
