// First-exception capture for thread teams. Three subsystems (the
// threadcomm World, the work-stealing pool, the vpr worker pool) each
// carried their own mutex + exception_ptr + atomic-failed triple; this is
// that pattern once, with the locking discipline enforced by the Clang
// thread-safety analysis instead of by convention.
//
// Usage: workers call record() from their catch(...) blocks; the owner
// polls failed() on its fast path (a relaxed atomic read, no lock) and
// calls rethrow_if_any() after joining.
#pragma once

#include <atomic>
#include <exception>

#include "util/thread_annotations.hpp"

namespace picprk::util {

class FirstError {
 public:
  /// Records `error` if none is held yet (first one wins). Thread-safe.
  void record(std::exception_ptr error) {
    LockGuard lock(mutex_);
    if (!error_) error_ = std::move(error);
    failed_.store(true, std::memory_order_release);
  }

  /// Convenience: record the in-flight exception of a catch(...) block.
  void record_current() { record(std::current_exception()); }

  /// Lock-free check used by worker fast paths to stop early.
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  /// Removes and returns the stored error (null if none), resetting the
  /// failed flag so the owner can be reused for the next batch.
  std::exception_ptr take() {
    LockGuard lock(mutex_);
    std::exception_ptr error = std::move(error_);
    error_ = nullptr;
    failed_.store(false, std::memory_order_release);
    return error;
  }

  /// Rethrows the stored error, if any, clearing it first.
  void rethrow_if_any() {
    if (!failed()) return;
    if (std::exception_ptr error = take()) std::rethrow_exception(error);
  }

 private:
  mutable Mutex mutex_;
  std::exception_ptr error_ PICPRK_GUARDED_BY(mutex_);
  std::atomic<bool> failed_{false};
};

}  // namespace picprk::util
