// ASCII table / data-series printing for the benchmark harnesses.
// Every figure-reproduction bench prints (a) a human-readable aligned
// table and (b) machine-parsable "# series:" CSV lines so that results
// can be re-plotted against the paper's figures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace picprk::util {

/// Right-aligned ASCII table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_u64(std::uint64_t v);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// One named series of (x, y) points; printed as CSV for re-plotting.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Prints "# series,<name>,<x>,<y>" lines for each point of each series.
void print_series_csv(std::ostream& os, const std::vector<Series>& series);

}  // namespace picprk::util
