#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace picprk::util {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const { return min_; }

double Accumulator::max() const { return max_; }

LoadImbalance imbalance(std::span<const double> loads) {
  LoadImbalance r;
  if (loads.empty()) return r;
  Accumulator acc;
  for (double v : loads) acc.add(v);
  r.max = acc.max();
  r.min = acc.min();
  r.mean = acc.mean();
  r.ratio = r.mean > 0.0 ? r.max / r.mean : 1.0;
  r.lost_fraction = r.max > 0.0 ? (r.max - r.mean) / r.max : 0.0;
  return r;
}

LoadImbalance imbalance_u64(std::span<const std::uint64_t> loads) {
  std::vector<double> d(loads.begin(), loads.end());
  return imbalance(std::span<const double>(d));
}

double percentile(std::vector<double> values, double p) {
  // Degenerate samples: the contract used to be a hard precondition on
  // !empty(), which turned every short benchmark run into UB-adjacent
  // assertion traffic. Summaries of zero or one observation have obvious
  // answers, so return them instead.
  if (values.empty()) return 0.0;
  if (values.size() == 1) return values.front();
  p = std::clamp(p, 0.0, 100.0);
  std::sort(values.begin(), values.end());
  const double pos = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double histogram_quantile(std::span<const std::uint64_t> counts, double lo, double hi,
                          double p) {
  if (counts.empty() || hi <= lo) return lo;
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return lo;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(total);
  const double width = (hi - lo) / static_cast<double>(counts.size());
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double next = cum + static_cast<double>(counts[i]);
    if (rank <= next && counts[i] > 0) {
      const double frac = (rank - cum) / static_cast<double>(counts[i]);
      return lo + width * (static_cast<double>(i) + frac);
    }
    cum = next;
  }
  return hi;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  PICPRK_EXPECTS(hi > lo);
  PICPRK_EXPECTS(buckets > 0);
}

void Histogram::add(double x, std::uint64_t weight) {
  const double t = (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>(std::floor(t));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bucket_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::quantile(double p) const {
  return histogram_quantile(std::span<const std::uint64_t>(counts_), lo_, hi_, p);
}

}  // namespace picprk::util
