// Function-level performance annotations, enforced statically by
// tools/picprk-lint rather than trusted on faith.
//
// PICPRK_HOT marks a function as steady-state hot-path code: the lint
// checker rejects any PICPRK_HOT body containing allocation, fmod, throw
// or container-growth tokens, turning the PR 2 "zero allocation, no
// fmod" guarantees into build-failing invariants instead of benchmark
// folklore (docs/STATIC_ANALYSIS.md). The attribute itself also nudges
// the compiler's inliner/BB placement on GCC and Clang.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define PICPRK_HOT [[gnu::hot]]
#else
#define PICPRK_HOT
#endif
