// Clang thread-safety annotations (-Wthread-safety) and the annotated
// synchronization wrappers the rest of the tree locks with. The macros
// expand to Clang capability attributes when the compiler supports them
// and to nothing otherwise (GCC builds see plain std synchronization),
// so the analysis is a free compile-time layer: a Clang build with
// -Werror=thread-safety (enabled automatically, see the top-level
// CMakeLists) refuses to compile an access to a PICPRK_GUARDED_BY member
// without its mutex held.
//
// The vocabulary follows the Clang documentation and Abseil's
// thread_annotations.h:
//  * PICPRK_GUARDED_BY(m)   — field may only be touched with m held;
//  * PICPRK_REQUIRES(m)     — function may only be called with m held;
//  * PICPRK_ACQUIRE/RELEASE — function takes / drops the capability;
//  * util::Mutex            — std::mutex wearing the capability attribute;
//  * util::LockGuard        — scoped acquisition the analysis understands;
//  * util::CondVar          — condition variable whose waits REQUIRE the
//                             annotated mutex (std::condition_variable's
//                             unique_lock interface is opaque to the
//                             analysis; this wrapper is not).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define PICPRK_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PICPRK_THREAD_ANNOTATION(x)  // no-op on GCC and others
#endif

#define PICPRK_CAPABILITY(name) PICPRK_THREAD_ANNOTATION(capability(name))
#define PICPRK_SCOPED_CAPABILITY PICPRK_THREAD_ANNOTATION(scoped_lockable)
#define PICPRK_GUARDED_BY(x) PICPRK_THREAD_ANNOTATION(guarded_by(x))
#define PICPRK_PT_GUARDED_BY(x) PICPRK_THREAD_ANNOTATION(pt_guarded_by(x))
#define PICPRK_REQUIRES(...) \
  PICPRK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PICPRK_ACQUIRE(...) \
  PICPRK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PICPRK_RELEASE(...) \
  PICPRK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PICPRK_TRY_ACQUIRE(...) \
  PICPRK_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define PICPRK_EXCLUDES(...) PICPRK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define PICPRK_RETURN_CAPABILITY(x) PICPRK_THREAD_ANNOTATION(lock_returned(x))
#define PICPRK_NO_THREAD_SAFETY_ANALYSIS \
  PICPRK_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace picprk::util {

/// std::mutex with the capability attribute, so PICPRK_GUARDED_BY fields
/// and PICPRK_REQUIRES functions can name it. Same cost as a bare
/// std::mutex; `native()` exists only for CondVar's wait plumbing.
class PICPRK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PICPRK_ACQUIRE() { mutex_.lock(); }
  void unlock() PICPRK_RELEASE() { mutex_.unlock(); }
  bool try_lock() PICPRK_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  /// The underlying std::mutex — needed by CondVar to interoperate with
  /// std::condition_variable. Do not lock/unlock through it directly;
  /// that would bypass the analysis.
  std::mutex& native() { return mutex_; }

 private:
  std::mutex mutex_;
};

/// Scoped lock over a util::Mutex that the thread-safety analysis tracks
/// (std::scoped_lock/unique_lock are opaque to it). Non-movable; always
/// holds its mutex from construction to destruction.
class PICPRK_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) PICPRK_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~LockGuard() PICPRK_RELEASE() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable over util::Mutex. Waits require the mutex held (and
/// are annotated so), matching how a std::condition_variable requires a
/// locked unique_lock; internally the held lock is adopted, waited on and
/// released back to the caller, so the caller's LockGuard stays valid.
class CondVar {
 public:
  /// Blocks until notified (spurious wakeups possible, as with the std
  /// type — callers re-check their predicate in a loop).
  void wait(Mutex& mutex) PICPRK_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's guard
  }

  /// Predicate wait: returns with the predicate true and the mutex held.
  template <typename Predicate>
  void wait(Mutex& mutex, Predicate pred) PICPRK_REQUIRES(mutex) {
    while (!pred()) wait(mutex);
  }

  /// Deadline wait; std::cv_status::timeout when `deadline` passed first.
  template <typename Clock, typename Duration>
  std::cv_status wait_until(Mutex& mutex,
                            const std::chrono::time_point<Clock, Duration>& deadline)
      PICPRK_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace picprk::util
