#include "lb/adaptive.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace picprk::lb {

AdaptiveStrategy::AdaptiveStrategy(std::unique_ptr<Strategy> bounds_inner,
                                   std::unique_ptr<Strategy> placement_inner,
                                   const AdaptiveOptions& options)
    : bounds_inner_(std::move(bounds_inner)),
      placement_inner_(std::move(placement_inner)),
      options_(options) {
  PICPRK_EXPECTS(options_.hysteresis > 0.0);
  PICPRK_EXPECTS(options_.min_gain >= 0.0);
  PICPRK_EXPECTS(bounds_inner_ != nullptr || placement_inner_ != nullptr);
}

bool AdaptiveStrategy::wants_y_phase() const {
  return bounds_inner_ != nullptr && bounds_inner_->wants_y_phase();
}

bool AdaptiveStrategy::should_rebalance(double lambda, double mean_load,
                                        std::uint32_t interval_steps,
                                        double interval_compute_seconds) const {
  if (lambda <= 1.0 + options_.min_gain) return false;
  // First event: nothing measured yet, so balance and learn the cost.
  if (last_cost_seconds_ <= 0.0 && last_moved_load_ <= 0.0) return true;
  if (last_cost_seconds_ > 0.0 && interval_compute_seconds > 0.0) {
    // Seconds on both sides: waste ≈ (max − mean) compute seconds per
    // interval versus the measured wall cost of the previous event.
    const double predicted_waste = (lambda - 1.0) * interval_compute_seconds;
    return predicted_waste > options_.hysteresis * last_cost_seconds_;
  }
  // Load-units fallback (deterministic count-based runs): waste in
  // load·steps versus the priced volume of the previous event.
  const double steps = static_cast<double>(std::max<std::uint32_t>(interval_steps, 1));
  const double predicted_waste = (lambda - 1.0) * mean_load * steps;
  return predicted_waste > options_.hysteresis * options_.move_cost * last_moved_load_;
}

std::vector<std::int64_t> AdaptiveStrategy::rebalance_bounds(const BoundsInput& in) {
  PICPRK_EXPECTS(bounds_inner_ != nullptr);
  double total = 0.0, max = 0.0;
  for (double v : in.loads) {
    total += v;
    max = std::max(max, v);
  }
  const double mean = total / static_cast<double>(in.loads.size());
  const double lambda = mean > 0.0 ? max / mean : 1.0;
  if (!should_rebalance(lambda, mean, in.interval_steps, in.interval_compute_seconds)) {
    return in.bounds;
  }
  return bounds_inner_->rebalance_bounds(in);
}

std::vector<int> AdaptiveStrategy::rebalance_placement(const PlacementInput& in) {
  PICPRK_EXPECTS(placement_inner_ != nullptr);
  // Degraded mode bypasses the cost gate: evacuating a dead worker's
  // parts is mandatory correctness work, not an optimization to price.
  if (!in.dead_workers.empty()) return placement_inner_->rebalance_placement(in);
  std::vector<double> wload(static_cast<std::size_t>(in.workers), 0.0);
  double total = 0.0;
  for (const PartLoad& p : in.parts) {
    PICPRK_EXPECTS(p.owner >= 0 && p.owner < in.workers);
    wload[static_cast<std::size_t>(p.owner)] += p.load;
    total += p.load;
  }
  const double mean = total / static_cast<double>(in.workers);
  double max = 0.0;
  for (double w : wload) max = std::max(max, w);
  const double lambda = mean > 0.0 ? max / mean : 1.0;
  std::vector<int> keep(in.parts.size());
  for (std::size_t i = 0; i < in.parts.size(); ++i) keep[i] = in.parts[i].owner;
  if (!should_rebalance(lambda, mean, in.interval_steps, in.interval_compute_seconds)) {
    return keep;
  }
  return placement_inner_->rebalance_placement(in);
}

void AdaptiveStrategy::note_applied(const ApplyFeedback& feedback) {
  // Remember the most recent *applied* event; a skipped event (all-zero
  // feedback) keeps the previous measurement.
  if (feedback.lb_seconds <= 0.0 && feedback.moved_load <= 0.0 &&
      feedback.moved_bytes == 0) {
    return;
  }
  last_cost_seconds_ = feedback.lb_seconds;
  last_moved_load_ = feedback.moved_load;
}

}  // namespace picprk::lb
