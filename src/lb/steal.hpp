// VP-level work stealing as a registered placement strategy. The async
// engine (par/async) runs VPs under distributed termination detection,
// so its quiet points are natural steal rounds: `steal_placement` is a
// pure, deterministic replay of the classic steal-request/transfer
// protocol — underloaded workers issue requests in ascending-load
// order, the currently most-loaded worker serves each request by
// handing over parts — evaluated identically on every rank from the
// allgathered loads (the lb `determinism` lint rule forbids RNG, clock
// or comm inside a strategy).
#pragma once

#include <string>
#include <vector>

#include "lb/placement.hpp"
#include "lb/strategy.hpp"

namespace picprk::lb {

/// Steal-request/transfer placement: repeated rounds where every worker
/// below the mean load requests work and the most-loaded worker donates
/// the heaviest part that fits half the pairwise gap (falling back to
/// its lightest part while that still shrinks the gap). Rounds repeat
/// until every worker is within `tolerance` of the mean or no transfer
/// makes progress. Ties break on the lowest worker/part id, so the plan
/// is a pure function of (parts, workers, tolerance).
std::vector<int> steal_placement(const std::vector<PartLoad>& parts, int workers,
                                 double tolerance);

/// `steal` in the registry: placement capability only, degraded-aware.
class StealStrategy final : public Strategy {
 public:
  explicit StealStrategy(double tolerance = 1.05) : tolerance_(tolerance) {}
  std::string name() const override { return "steal"; }
  bool balances_placement() const override { return true; }
  bool supports_degraded() const override { return true; }
  std::vector<int> rebalance_placement(const PlacementInput& in) override {
    return plan_degraded(in, [t = tolerance_](const std::vector<PartLoad>& parts,
                                              int workers) {
      return steal_placement(parts, workers, t);
    });
  }

 private:
  double tolerance_;
};

}  // namespace picprk::lb
