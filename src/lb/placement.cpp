#include "lb/placement.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/assert.hpp"

namespace picprk::lb {

std::vector<int> keep_placement(const std::vector<PartLoad>& parts) {
  std::vector<int> out(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) out[i] = parts[i].owner;
  return out;
}

std::vector<int> greedy_placement(const std::vector<PartLoad>& parts, int workers) {
  PICPRK_EXPECTS(workers >= 1);
  std::vector<std::size_t> order(parts.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return parts[a].load > parts[b].load;
  });
  // Min-heap of (worker load, worker id).
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (int w = 0; w < workers; ++w) heap.emplace(0.0, w);
  std::vector<int> out(parts.size());
  for (std::size_t idx : order) {
    auto [wload, w] = heap.top();
    heap.pop();
    out[idx] = w;
    heap.emplace(wload + parts[idx].load, w);
  }
  return out;
}

std::vector<int> refine_placement(const std::vector<PartLoad>& parts, int workers,
                                  double tolerance) {
  PICPRK_EXPECTS(workers >= 1);
  std::vector<int> out(parts.size());
  std::vector<double> wload(static_cast<std::size_t>(workers), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    out[i] = parts[i].owner;
    PICPRK_EXPECTS(out[i] >= 0 && out[i] < workers);
    wload[static_cast<std::size_t>(out[i])] += parts[i].load;
    total += parts[i].load;
  }
  const double avg = total / static_cast<double>(workers);
  const double cap = avg * tolerance;

  // Repeatedly move the smallest adequate part off the most loaded
  // worker onto the least loaded one, while that reduces the maximum.
  for (std::size_t guard = 0; guard < parts.size() * 4 + 16; ++guard) {
    const auto hi = static_cast<int>(
        std::max_element(wload.begin(), wload.end()) - wload.begin());
    const auto lo = static_cast<int>(
        std::min_element(wload.begin(), wload.end()) - wload.begin());
    if (wload[static_cast<std::size_t>(hi)] <= cap || hi == lo) break;
    // Pick the largest part on `hi` that still fits under the average
    // on `lo` — or failing that, the smallest part on `hi`.
    std::ptrdiff_t best = -1;
    std::ptrdiff_t smallest = -1;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (out[i] != hi) continue;
      if (smallest < 0 || parts[i].load < parts[static_cast<std::size_t>(smallest)].load)
        smallest = static_cast<std::ptrdiff_t>(i);
      if (wload[static_cast<std::size_t>(lo)] + parts[i].load <= cap) {
        if (best < 0 || parts[i].load > parts[static_cast<std::size_t>(best)].load)
          best = static_cast<std::ptrdiff_t>(i);
      }
    }
    const std::ptrdiff_t pick = best >= 0 ? best : smallest;
    if (pick < 0) break;
    const auto i = static_cast<std::size_t>(pick);
    // Stop if moving it would not improve the maximum.
    if (wload[static_cast<std::size_t>(lo)] + parts[i].load >=
        wload[static_cast<std::size_t>(hi)])
      break;
    wload[static_cast<std::size_t>(hi)] -= parts[i].load;
    wload[static_cast<std::size_t>(lo)] += parts[i].load;
    out[i] = lo;
  }
  return out;
}

std::vector<int> diffusion_ring_placement(const std::vector<PartLoad>& parts,
                                          int workers, double threshold) {
  PICPRK_EXPECTS(workers >= 1);
  std::vector<int> out(parts.size());
  std::vector<double> wload(static_cast<std::size_t>(workers), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    out[i] = parts[i].owner;
    PICPRK_EXPECTS(out[i] >= 0 && out[i] < workers);
    wload[static_cast<std::size_t>(out[i])] += parts[i].load;
    total += parts[i].load;
  }
  if (workers == 1) return out;
  const double avg = total / static_cast<double>(workers);
  const double tau = threshold * avg;

  // One Jacobi sweep over the worker ring.
  for (int w = 0; w < workers; ++w) {
    const int next = (w + 1) % workers;
    double diff = wload[static_cast<std::size_t>(w)] - wload[static_cast<std::size_t>(next)];
    const int from = diff > tau ? w : (-diff > tau ? next : -1);
    if (from < 0) continue;
    const int to = from == w ? next : w;
    // Shed lightest parts from `from` until the pair is within tau.
    for (;;) {
      diff = wload[static_cast<std::size_t>(from)] - wload[static_cast<std::size_t>(to)];
      if (diff <= tau) break;
      std::ptrdiff_t lightest = -1;
      for (std::size_t i = 0; i < parts.size(); ++i) {
        if (out[i] != from) continue;
        if (lightest < 0 ||
            parts[i].load < parts[static_cast<std::size_t>(lightest)].load)
          lightest = static_cast<std::ptrdiff_t>(i);
      }
      if (lightest < 0) break;
      const auto i = static_cast<std::size_t>(lightest);
      if (parts[i].load >= diff) break;  // moving it would overshoot
      out[i] = to;
      wload[static_cast<std::size_t>(from)] -= parts[i].load;
      wload[static_cast<std::size_t>(to)] += parts[i].load;
    }
  }
  return out;
}

std::vector<int> compact_placement(const std::vector<PartLoad>& parts, int workers,
                                   double tolerance) {
  PICPRK_EXPECTS(workers >= 1);
  std::vector<int> out(parts.size());
  std::vector<double> wload(static_cast<std::size_t>(workers), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    out[i] = parts[i].owner;
    PICPRK_EXPECTS(out[i] >= 0 && out[i] < workers);
    wload[static_cast<std::size_t>(out[i])] += parts[i].load;
    total += parts[i].load;
  }
  if (workers == 1) return out;
  const double avg = total / static_cast<double>(workers);
  const double cap = avg * tolerance;

  // Part index lookup by id (neighbors reference part ids).
  std::vector<std::size_t> index_of;
  {
    int max_id = 0;
    for (const auto& l : parts) max_id = std::max(max_id, l.part);
    index_of.assign(static_cast<std::size_t>(max_id) + 1, parts.size());
    for (std::size_t i = 0; i < parts.size(); ++i) {
      index_of[static_cast<std::size_t>(parts[i].part)] = i;
    }
  }
  auto neighbors_on = [&](std::size_t i, int worker) {
    int count = 0;
    for (int nb : parts[i].neighbors) {
      if (nb >= 0 && static_cast<std::size_t>(nb) < index_of.size() &&
          index_of[static_cast<std::size_t>(nb)] < parts.size() &&
          out[index_of[static_cast<std::size_t>(nb)]] == worker) {
        ++count;
      }
    }
    return count;
  };

  for (std::size_t guard = 0; guard < parts.size() * 4 + 16; ++guard) {
    const auto hi = static_cast<int>(
        std::max_element(wload.begin(), wload.end()) - wload.begin());
    if (wload[static_cast<std::size_t>(hi)] <= cap) break;

    // Shed a *border* part: on the overloaded worker, the one with the
    // fewest same-worker neighbors (ties: smallest load, so the move is
    // cheap). Analogue of the diffusion scheme migrating border columns.
    std::ptrdiff_t pick = -1;
    int pick_local_neighbors = 0;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (out[i] != hi) continue;
      const int local = neighbors_on(i, hi);
      if (pick < 0 || local < pick_local_neighbors ||
          (local == pick_local_neighbors &&
           parts[i].load < parts[static_cast<std::size_t>(pick)].load)) {
        pick = static_cast<std::ptrdiff_t>(i);
        pick_local_neighbors = local;
      }
    }
    if (pick < 0) break;
    const auto i = static_cast<std::size_t>(pick);

    // Destination: among workers that stay under cap after the move,
    // the one hosting the most of this part's neighbors; ties: least
    // loaded. Fall back to the least loaded worker.
    int dest = -1;
    int dest_neighbors = -1;
    for (int w = 0; w < workers; ++w) {
      if (w == hi) continue;
      if (wload[static_cast<std::size_t>(w)] + parts[i].load > cap) continue;
      const int nb = neighbors_on(i, w);
      if (nb > dest_neighbors ||
          (nb == dest_neighbors && dest >= 0 &&
           wload[static_cast<std::size_t>(w)] < wload[static_cast<std::size_t>(dest)])) {
        dest = w;
        dest_neighbors = nb;
      }
    }
    if (dest < 0) {
      const auto lo = static_cast<int>(
          std::min_element(wload.begin(), wload.end()) - wload.begin());
      if (lo == hi ||
          wload[static_cast<std::size_t>(lo)] + parts[i].load >=
              wload[static_cast<std::size_t>(hi)]) {
        break;  // no move improves the maximum
      }
      dest = lo;
    }
    wload[static_cast<std::size_t>(hi)] -= parts[i].load;
    wload[static_cast<std::size_t>(dest)] += parts[i].load;
    out[i] = dest;
  }
  return out;
}

std::vector<int> rotate_placement(const std::vector<PartLoad>& parts, int workers) {
  std::vector<int> out(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    out[i] = (parts[i].owner + 1) % workers;
  }
  return out;
}

std::vector<int> plan_degraded(const PlacementInput& in, const PlanFn& plan) {
  PICPRK_EXPECTS(in.workers >= 1);
  if (in.dead_workers.empty()) return plan(in.parts, in.workers);

  std::vector<bool> dead(static_cast<std::size_t>(in.workers), false);
  for (const int w : in.dead_workers) {
    PICPRK_EXPECTS(w >= 0 && w < in.workers);
    dead[static_cast<std::size_t>(w)] = true;
  }
  std::vector<int> live;            // live-index -> world worker id
  std::vector<int> live_index(      // world worker id -> live-index (or -1)
      static_cast<std::size_t>(in.workers), -1);
  for (int w = 0; w < in.workers; ++w) {
    if (dead[static_cast<std::size_t>(w)]) continue;
    live_index[static_cast<std::size_t>(w)] = static_cast<int>(live.size());
    live.push_back(w);
  }
  PICPRK_ASSERT_MSG(!live.empty(), "lb: degraded plan with every worker dead");

  // Pre-assign orphans to the least-loaded live worker, heaviest first:
  // deterministic, and hands owner-respecting planners (refine, compact,
  // diffusion) a well-formed placement to improve on.
  std::vector<PartLoad> parts = in.parts;
  std::vector<double> wload(live.size(), 0.0);
  std::vector<std::size_t> orphans;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    PICPRK_EXPECTS(parts[i].owner >= 0 && parts[i].owner < in.workers);
    if (dead[static_cast<std::size_t>(parts[i].owner)]) {
      orphans.push_back(i);
    } else {
      wload[static_cast<std::size_t>(
          live_index[static_cast<std::size_t>(parts[i].owner)])] += parts[i].load;
    }
  }
  std::stable_sort(orphans.begin(), orphans.end(),
                   [&parts](std::size_t a, std::size_t b) {
                     return parts[a].load > parts[b].load;
                   });
  for (const std::size_t i : orphans) {
    const auto lo = static_cast<std::size_t>(
        std::min_element(wload.begin(), wload.end()) - wload.begin());
    wload[lo] += parts[i].load;
    parts[i].owner = live[lo];
  }

  // Plan in the dense live-index space, then map back to world ids.
  for (auto& part : parts) {
    part.owner = live_index[static_cast<std::size_t>(part.owner)];
  }
  const std::vector<int> live_plan = plan(parts, static_cast<int>(live.size()));
  PICPRK_ASSERT_MSG(live_plan.size() == parts.size(),
                    "lb: degraded planner returned a wrong-size map");
  std::vector<int> out(live_plan.size());
  for (std::size_t i = 0; i < live_plan.size(); ++i) {
    PICPRK_ASSERT_MSG(
        live_plan[i] >= 0 && live_plan[i] < static_cast<int>(live.size()),
        "lb: degraded planner mapped a part outside the live worker set");
    out[i] = live[static_cast<std::size_t>(live_plan[i])];
  }
  return out;
}

std::vector<int> evacuate_placement(const PlacementInput& in) {
  return plan_degraded(in, [](const std::vector<PartLoad>& parts, int /*workers*/) {
    return keep_placement(parts);
  });
}

}  // namespace picprk::lb
