#include "lb/registry.hpp"

#include <functional>
#include <stdexcept>

#include "lb/adaptive.hpp"
#include "lb/bounds.hpp"
#include "lb/placement.hpp"
#include "lb/steal.hpp"

namespace picprk::lb {

namespace {

/// Typed option access; every factory checks its keys against the
/// allowed set first, so a typo in an experiment sweep fails loudly
/// instead of silently running defaults.
double opt_double(const Options& opts, const std::string& key, double def) {
  const auto it = opts.find(key);
  if (it == opts.end()) return def;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("lb: option " + key + " expects a number, got '" +
                                it->second + "'");
  }
}

std::int64_t opt_int(const Options& opts, const std::string& key, std::int64_t def) {
  const auto it = opts.find(key);
  if (it == opts.end()) return def;
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("lb: option " + key + " expects an integer, got '" +
                                it->second + "'");
  }
}

bool opt_bool(const Options& opts, const std::string& key, bool def) {
  const auto it = opts.find(key);
  if (it == opts.end()) return def;
  if (it->second == "1" || it->second == "true" || it->second == "on") return true;
  if (it->second == "0" || it->second == "false" || it->second == "off") return false;
  throw std::invalid_argument("lb: option " + key + " expects a boolean, got '" +
                              it->second + "'");
}

std::string opt_string(const Options& opts, const std::string& key,
                       const std::string& def) {
  const auto it = opts.find(key);
  return it == opts.end() ? def : it->second;
}

void check_keys(const std::string& name, const Options& opts,
                std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : opts) {
    (void)value;
    bool ok = false;
    for (const char* a : allowed) ok = ok || key == a;
    if (!ok) {
      std::string list;
      for (const char* a : allowed) list += (list.empty() ? "" : ", ") + std::string(a);
      throw std::invalid_argument("lb: strategy '" + name + "' has no option '" + key +
                                  "' (accepted: " + (list.empty() ? "none" : list) +
                                  ")");
    }
  }
}

struct Entry {
  Descriptor descriptor;
  std::function<std::unique_ptr<Strategy>(const Options&)> build;
};

std::unique_ptr<Strategy> build_adaptive(const Options& opts);

/// The builtin table. Sorted by name; registered_strategies() relies on
/// that for its listing order.
const std::vector<Entry>& entries() {
  static const std::vector<Entry> table = {
      {{"adaptive",
        "cost-model wrapper: rebalance only when predicted imbalance cost "
        "exceeds the measured cost of the previous LB event",
        true, true, true},
       build_adaptive},
      {{"compact",
        "locality-hinted refine: sheds border parts onto the neighbor-hosting "
        "worker (§V-B future-work remark)",
        false, true, true},
       [](const Options& opts) -> std::unique_ptr<Strategy> {
         check_keys("compact", opts, {"tolerance"});
         return std::make_unique<CompactStrategy>(opt_double(opts, "tolerance", 1.05));
       }},
      {{"diffusion",
        "§IV-B boundary diffusion à la Cybenko (bounds) / worker-ring "
        "diffusion (placement)",
        true, true, true},
       [](const Options& opts) -> std::unique_ptr<Strategy> {
         check_keys("diffusion", opts, {"threshold", "border", "two_phase"});
         return std::make_unique<DiffusionStrategy>(
             opt_double(opts, "threshold", 0.10), opt_int(opts, "border", 1),
             opt_bool(opts, "two_phase", false));
       }},
      {{"greedy",
        "Charm-style GreedyLB: heaviest part onto the least-loaded worker "
        "(the paper's choice)",
        false, true, true},
       [](const Options& opts) -> std::unique_ptr<Strategy> {
         check_keys("greedy", opts, {});
         return std::make_unique<GreedyStrategy>();
       }},
      {{"null", "no rebalancing: the statically mapped baseline", false, true, true},
       [](const Options& opts) -> std::unique_ptr<Strategy> {
         check_keys("null", opts, {});
         return std::make_unique<NullStrategy>();
       }},
      {{"rcb",
        "global recursive-coordinate-bisection repartition (Sauget & Latu "
        "style)",
        true, false, false},
       [](const Options& opts) -> std::unique_ptr<Strategy> {
         check_keys("rcb", opts, {"threshold", "two_phase"});
         return std::make_unique<RcbStrategy>(opt_double(opts, "threshold", 0.05),
                                              opt_bool(opts, "two_phase", false));
       }},
      {{"refine",
        "Charm-style RefineLB: move parts off overloaded workers until below "
        "tolerance × average",
        false, true, true},
       [](const Options& opts) -> std::unique_ptr<Strategy> {
         check_keys("refine", opts, {"tolerance"});
         return std::make_unique<RefineStrategy>(opt_double(opts, "tolerance", 1.05));
       }},
      {{"rotate",
        "pathological: every part to the next worker (prices migration with "
        "zero benefit)",
        false, true, true},
       [](const Options& opts) -> std::unique_ptr<Strategy> {
         check_keys("rotate", opts, {});
         return std::make_unique<RotateStrategy>();
       }},
      {{"steal",
        "VP-level work stealing: workers below the mean pull parts off the "
        "most loaded donor (steal-request/transfer replayed deterministically)",
        false, true, true},
       [](const Options& opts) -> std::unique_ptr<Strategy> {
         check_keys("steal", opts, {"tolerance"});
         return std::make_unique<StealStrategy>(opt_double(opts, "tolerance", 1.05));
       }},
  };
  return table;
}

const Entry& entry_of(const std::string& name) {
  for (const Entry& e : entries()) {
    if (e.descriptor.name == name) return e;
  }
  std::string known;
  for (const Entry& e : entries()) {
    known += (known.empty() ? "" : ", ") + e.descriptor.name;
  }
  throw std::invalid_argument("lb: unknown strategy '" + name + "' (registered: " +
                              known + ")");
}

std::unique_ptr<Strategy> build_adaptive(const Options& opts) {
  check_keys("adaptive", opts, {"inner", "hysteresis", "min_gain", "move_cost"});
  AdaptiveOptions options;
  options.hysteresis = opt_double(opts, "hysteresis", 1.5);
  options.min_gain = opt_double(opts, "min_gain", 0.02);
  options.move_cost = opt_double(opts, "move_cost", 3.0);
  const std::string inner = opt_string(opts, "inner", "");
  if (inner == "adaptive") {
    throw std::invalid_argument("lb: adaptive cannot wrap itself");
  }
  // The inner strategy covers whichever roles it implements; the other
  // role falls back to the canonical default (diffusion for bounds,
  // greedy for placement — the paper's §IV-B / §IV-C pairing).
  std::unique_ptr<Strategy> bounds_inner;
  std::unique_ptr<Strategy> placement_inner;
  if (!inner.empty()) {
    const Entry& e = entry_of(inner);
    if (e.descriptor.bounds) bounds_inner = e.build({});
    if (e.descriptor.placement) placement_inner = e.build({});
    if (!e.descriptor.bounds && !e.descriptor.placement) {
      throw std::invalid_argument("lb: adaptive inner '" + inner +
                                  "' balances nothing");
    }
  }
  if (bounds_inner == nullptr) bounds_inner = entry_of("diffusion").build({});
  if (placement_inner == nullptr) placement_inner = entry_of("greedy").build({});
  return std::make_unique<AdaptiveStrategy>(std::move(bounds_inner),
                                            std::move(placement_inner), options);
}

}  // namespace

ParsedSpec parse_spec(const std::string& spec) {
  ParsedSpec out;
  const std::size_t colon = spec.find(':');
  out.name = spec.substr(0, colon);
  if (out.name.empty()) {
    throw std::invalid_argument("lb: empty strategy name in spec '" + spec + "'");
  }
  if (colon == std::string::npos) return out;
  std::string rest = spec.substr(colon + 1);
  std::size_t pos = 0;
  while (pos < rest.size()) {
    std::size_t comma = rest.find(',', pos);
    if (comma == std::string::npos) comma = rest.size();
    const std::string pair = rest.substr(pos, comma - pos);
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= pair.size()) {
      throw std::invalid_argument("lb: malformed option '" + pair + "' in spec '" +
                                  spec + "' (expected key=value)");
    }
    out.options[pair.substr(0, eq)] = pair.substr(eq + 1);
    pos = comma + 1;
  }
  return out;
}

std::vector<Descriptor> registered_strategies() {
  std::vector<Descriptor> out;
  out.reserve(entries().size());
  for (const Entry& e : entries()) out.push_back(e.descriptor);
  return out;
}

Descriptor descriptor_of(const std::string& name) {
  return entry_of(name).descriptor;
}

std::unique_ptr<Strategy> make_strategy(const std::string& spec) {
  const ParsedSpec parsed = parse_spec(spec);
  return entry_of(parsed.name).build(parsed.options);
}

}  // namespace picprk::lb
