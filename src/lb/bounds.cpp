#include "lb/bounds.hpp"

#include <algorithm>

#include "lb/placement.hpp"
#include "util/assert.hpp"

namespace picprk::lb {

std::vector<std::int64_t> diffuse_bounds(const std::vector<std::int64_t>& bounds,
                                         const std::vector<double>& loads,
                                         double abs_threshold, std::int64_t width) {
  PICPRK_EXPECTS(bounds.size() == loads.size() + 1);
  PICPRK_EXPECTS(width >= 1);
  const auto parts = static_cast<std::int64_t>(loads.size());
  std::vector<std::int64_t> out = bounds;
  for (std::int64_t b = 1; b < parts; ++b) {
    const double lower = loads[static_cast<std::size_t>(b - 1)];
    const double upper = loads[static_cast<std::size_t>(b)];
    std::int64_t proposed = bounds[static_cast<std::size_t>(b)];
    if (lower - upper > abs_threshold) {
      proposed -= width;  // lower side is overloaded: give cells rightward
    } else if (upper - lower > abs_threshold) {
      proposed += width;  // upper side is overloaded: take cells from it
    }
    // Sequential clamp keeps boundaries strictly increasing even when
    // adjacent boundaries move in the same LB step. The lower clamp also
    // respects the OLD boundary b−1: the sender of a left-shift ships
    // mesh columns from its current slab, which starts at the old
    // boundary, so a boundary may never jump past it in one step.
    const std::int64_t lo =
        std::max(out[static_cast<std::size_t>(b - 1)], bounds[static_cast<std::size_t>(b - 1)]) + 1;
    const std::int64_t hi = bounds[static_cast<std::size_t>(b + 1)] - 1;
    out[static_cast<std::size_t>(b)] = std::clamp(proposed, lo, hi);
  }
  return out;
}

namespace {

/// Cumulative load at cell coordinate `x` (0 ≤ x ≤ cells) of the
/// piecewise-uniform density: loads[i] spread evenly over cells
/// [bounds[i], bounds[i+1]).
double cumulative_at(const std::vector<std::int64_t>& bounds,
                     const std::vector<double>& loads, std::int64_t x) {
  double sum = 0.0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const std::int64_t lo = bounds[i];
    const std::int64_t hi = bounds[i + 1];
    if (x >= hi) {
      sum += loads[i];
    } else if (x > lo) {
      sum += loads[i] * static_cast<double>(x - lo) / static_cast<double>(hi - lo);
      break;
    } else {
      break;
    }
  }
  return sum;
}

/// Recursive bisection of cell range [lo, hi) into parts p0..p1,
/// writing interior boundaries into `out`. The cut cell is the smallest
/// coordinate whose cumulative load reaches the proportional target,
/// clamped so every part keeps at least one cell.
void bisect(const std::vector<std::int64_t>& bounds, const std::vector<double>& loads,
            std::int64_t lo, std::int64_t hi, std::int64_t p0, std::int64_t p1,
            std::vector<std::int64_t>& out) {
  if (p1 - p0 <= 1) return;
  const std::int64_t mid = p0 + (p1 - p0) / 2;
  const double w_lo = cumulative_at(bounds, loads, lo);
  const double w_hi = cumulative_at(bounds, loads, hi);
  const double target =
      w_lo + (w_hi - w_lo) * static_cast<double>(mid - p0) / static_cast<double>(p1 - p0);

  // Smallest cut with cum(cut) ≥ target; the clamp guarantees at least
  // one cell per part on both sides after the recursion bottoms out.
  const std::int64_t min_cut = lo + (mid - p0);
  const std::int64_t max_cut = hi - (p1 - mid);
  std::int64_t cut = min_cut;
  while (cut < max_cut && cumulative_at(bounds, loads, cut) < target) ++cut;
  out[static_cast<std::size_t>(mid)] = cut;
  bisect(bounds, loads, lo, cut, p0, mid, out);
  bisect(bounds, loads, cut, hi, mid, p1, out);
}

}  // namespace

std::vector<std::int64_t> rcb_bounds(const std::vector<std::int64_t>& bounds,
                                     const std::vector<double>& loads) {
  PICPRK_EXPECTS(bounds.size() == loads.size() + 1);
  const auto parts = static_cast<std::int64_t>(loads.size());
  PICPRK_EXPECTS(bounds.back() - bounds.front() >= parts);
  std::vector<std::int64_t> out = bounds;
  bisect(bounds, loads, bounds.front(), bounds.back(), 0, parts, out);
  return out;
}

std::vector<std::int64_t> DiffusionStrategy::rebalance_bounds(const BoundsInput& in) {
  double total = 0.0;
  for (double v : in.loads) total += v;
  const double abs_threshold =
      threshold_ * total / static_cast<double>(in.loads.size());
  return diffuse_bounds(in.bounds, in.loads, abs_threshold, border_);
}

std::vector<int> DiffusionStrategy::rebalance_placement(const PlacementInput& in) {
  return plan_degraded(in, [t = threshold_](const std::vector<PartLoad>& parts,
                                            int workers) {
    return diffusion_ring_placement(parts, workers, t);
  });
}

std::vector<std::int64_t> RcbStrategy::rebalance_bounds(const BoundsInput& in) {
  double total = 0.0, max = 0.0;
  for (double v : in.loads) {
    total += v;
    max = std::max(max, v);
  }
  const double mean = total / static_cast<double>(in.loads.size());
  if (mean <= 0.0 || max / mean < 1.0 + threshold_) return in.bounds;
  return rcb_bounds(in.bounds, in.loads);
}

}  // namespace picprk::lb
