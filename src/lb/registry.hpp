// Name-keyed registry of lb::Strategy implementations — the single
// selection point behind `picprk --balancer <name>[:key=val,...]`, the
// vpr runtime, the drivers, the benches and the performance model.
// Every strategy the repo ships is registered here with its capability
// flags, so tools can enumerate the assessment matrix (`--balancer
// list`) and the conformance suite can sweep every entry.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lb/strategy.hpp"

namespace picprk::lb {

/// One registry entry, as shown by `picprk --balancer list`.
struct Descriptor {
  std::string name;
  std::string summary;
  bool bounds = false;     ///< implements rebalance_bounds
  bool placement = false;  ///< implements rebalance_placement
  bool degraded = false;   ///< placement plans honour PlacementInput::dead_workers
};

/// Strategy options parsed from the `name:key=val,key=val` spec syntax.
using Options = std::map<std::string, std::string>;

/// A spec split into its name and options. parse_spec("diffusion:
/// threshold=0.2,border=2") -> {"diffusion", {{"threshold","0.2"},...}}.
struct ParsedSpec {
  std::string name;
  Options options;
};

/// Splits a spec string; throws std::invalid_argument on syntax errors
/// (missing '=', empty name).
ParsedSpec parse_spec(const std::string& spec);

/// All registered strategies, sorted by name.
std::vector<Descriptor> registered_strategies();

/// The descriptor for `name`; throws std::invalid_argument for unknown
/// names (message lists the registered ones).
Descriptor descriptor_of(const std::string& name);

/// Builds a strategy from a spec ("rcb", "diffusion:threshold=0.2",
/// "adaptive:inner=rcb,hysteresis=2"). Throws std::invalid_argument on
/// unknown names, unknown option keys, or malformed values.
std::unique_ptr<Strategy> make_strategy(const std::string& spec);

}  // namespace picprk::lb
