#include "lb/steal.hpp"

#include <algorithm>
#include <cstddef>
#include <numeric>

#include "util/assert.hpp"

namespace picprk::lb {

namespace {

/// Donor's best offering for a thief `gap` below it: the heaviest part
/// no bigger than half the gap (so the transfer cannot overshoot), or
/// the lightest part when even that is too coarse but still shrinks the
/// gap. Returns npos when the donor has nothing useful to give.
std::size_t pick_transfer(const std::vector<PartLoad>& parts, const std::vector<int>& owner,
                          int donor, double gap) {
  constexpr auto npos = static_cast<std::size_t>(-1);
  std::size_t best = npos;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (owner[i] != donor || parts[i].load <= 0.0) continue;
    if (parts[i].load > gap * 0.5) continue;
    if (best == npos || parts[i].load > parts[best].load) best = i;
  }
  if (best != npos) return best;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (owner[i] != donor || parts[i].load <= 0.0) continue;
    if (parts[i].load >= gap) continue;  // would invert the imbalance
    if (best == npos || parts[i].load < parts[best].load) best = i;
  }
  return best;
}

}  // namespace

std::vector<int> steal_placement(const std::vector<PartLoad>& parts, int workers,
                                 double tolerance) {
  PICPRK_EXPECTS(workers >= 1);
  PICPRK_EXPECTS(tolerance >= 1.0);
  std::vector<int> out(parts.size());
  std::vector<double> wload(static_cast<std::size_t>(workers), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    out[i] = parts[i].owner;
    PICPRK_EXPECTS(out[i] >= 0 && out[i] < workers);
    wload[static_cast<std::size_t>(out[i])] += parts[i].load;
    total += parts[i].load;
  }
  if (workers == 1 || parts.empty()) return out;
  const double mean = total / static_cast<double>(workers);

  // Request/transfer rounds. Each transfer strictly decreases Σ load²
  // (the donated load fits inside the pairwise gap), so the plan
  // converges; the guard bounds pathological float dithering.
  std::vector<int> thieves;
  for (std::size_t round = 0; round < parts.size() * 4 + 16; ++round) {
    thieves.clear();
    for (int w = 0; w < workers; ++w) {
      if (wload[static_cast<std::size_t>(w)] < mean) thieves.push_back(w);
    }
    std::stable_sort(thieves.begin(), thieves.end(), [&](int a, int b) {
      return wload[static_cast<std::size_t>(a)] < wload[static_cast<std::size_t>(b)];
    });
    bool progress = false;
    for (int thief : thieves) {
      const auto donor = static_cast<int>(
          std::max_element(wload.begin(), wload.end()) - wload.begin());
      if (donor == thief) break;
      if (wload[static_cast<std::size_t>(donor)] <= mean * tolerance) break;
      const double gap =
          wload[static_cast<std::size_t>(donor)] - wload[static_cast<std::size_t>(thief)];
      const std::size_t pick = pick_transfer(parts, out, donor, gap);
      if (pick == static_cast<std::size_t>(-1)) continue;
      out[pick] = thief;
      wload[static_cast<std::size_t>(donor)] -= parts[pick].load;
      wload[static_cast<std::size_t>(thief)] += parts[pick].load;
      progress = true;
    }
    if (!progress) break;
  }
  return out;
}

}  // namespace picprk::lb
