// Placement algorithms: map migratable parts (VPs) onto workers given
// per-part loads — the stand-ins for the Charm++ balancer collection
// the paper mentions ("Charm++ provides not just one but a collection
// of load balancing strategies", §IV-C). GreedyLB is the paper's choice
// ("migrates VPs from the most loaded to the least loaded core").
//
// The algorithms are exposed both as free functions (so composite
// strategies like `diffusion` and `adaptive` can reuse them) and as
// registered lb::Strategy classes. All are pure: same input, same plan,
// on every caller.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "lb/strategy.hpp"

namespace picprk::lb {

/// No rebalancing; the over-decomposed but statically mapped baseline.
std::vector<int> keep_placement(const std::vector<PartLoad>& parts);

/// Charm-style GreedyLB: parts sorted by decreasing load, each assigned
/// to the currently least-loaded worker. Ignores current placement (and
/// hence locality) — the behaviour the paper's strong-scaling
/// discussion attributes to the AMPI runtime.
std::vector<int> greedy_placement(const std::vector<PartLoad>& parts, int workers);

/// Charm-style RefineLB: keeps placements and only moves parts off
/// overloaded workers onto underloaded ones until every worker is below
/// `tolerance` × average. Fewer migrations than greedy.
std::vector<int> refine_placement(const std::vector<PartLoad>& parts, int workers,
                                  double tolerance);

/// Diffusion among workers arranged in a ring: each worker compares
/// with its right neighbor and sheds its lightest parts across when the
/// difference exceeds the threshold fraction of the average load.
std::vector<int> diffusion_ring_placement(const std::vector<PartLoad>& parts,
                                          int workers, double threshold);

/// Hinted, locality-preserving balancer — the paper's §V-B future-work
/// remark implemented: refine-style shedding that (a) sheds *border*
/// parts (those with the fewest same-worker neighbors) off overloaded
/// workers and (b) places them on the underloaded worker already
/// hosting most of their neighbors.
std::vector<int> compact_placement(const std::vector<PartLoad>& parts, int workers,
                                   double tolerance);

/// Rotates every part to the next worker — a pathological strategy used
/// in tests and ablations to price migration with zero balance benefit.
std::vector<int> rotate_placement(const std::vector<PartLoad>& parts, int workers);

// ------------------------------------------------------------------
// Degraded-mode planning (localized failure recovery).

/// A plain placement planner over `workers` workers: same contract as
/// the free functions above (owners of the input parts are valid worker
/// ids in [0, workers)).
using PlanFn =
    std::function<std::vector<int>(const std::vector<PartLoad>&, int workers)>;

/// Runs `plan` over the shrunken live-worker set of a degraded input:
/// orphaned parts (owner in in.dead_workers) are pre-assigned to the
/// least-loaded live worker in decreasing-load order (deterministic),
/// owners are translated into the dense live-index space, `plan` runs
/// over the live worker count, and the result is mapped back to world
/// worker ids. With no dead workers this is exactly `plan(parts,
/// workers)`. The returned plan never targets a dead worker.
std::vector<int> plan_degraded(const PlacementInput& in, const PlanFn& plan);

/// Minimal degraded plan: every surviving part keeps its worker and
/// only orphans move (to the least-loaded live worker). The fallback
/// for strategies that do not claim supports_degraded(), and the
/// cheapest evacuation a recovery path can apply.
std::vector<int> evacuate_placement(const PlacementInput& in);

// ------------------------------------------------------------------
// Strategy wrappers (registered under the same names the old
// vpr::make_load_balancer factory used).

class NullStrategy final : public Strategy {
 public:
  std::string name() const override { return "null"; }
  bool balances_placement() const override { return true; }
  bool supports_degraded() const override { return true; }
  std::vector<int> rebalance_placement(const PlacementInput& in) override {
    // Even "no rebalancing" must evacuate orphans off dead workers.
    if (!in.dead_workers.empty()) return evacuate_placement(in);
    return keep_placement(in.parts);
  }
};

class GreedyStrategy final : public Strategy {
 public:
  std::string name() const override { return "greedy"; }
  bool balances_placement() const override { return true; }
  bool supports_degraded() const override { return true; }
  std::vector<int> rebalance_placement(const PlacementInput& in) override {
    return plan_degraded(in, [](const std::vector<PartLoad>& parts, int workers) {
      return greedy_placement(parts, workers);
    });
  }
};

class RefineStrategy final : public Strategy {
 public:
  explicit RefineStrategy(double tolerance = 1.05) : tolerance_(tolerance) {}
  std::string name() const override { return "refine"; }
  bool balances_placement() const override { return true; }
  bool supports_degraded() const override { return true; }
  std::vector<int> rebalance_placement(const PlacementInput& in) override {
    return plan_degraded(in, [t = tolerance_](const std::vector<PartLoad>& parts,
                                              int workers) {
      return refine_placement(parts, workers, t);
    });
  }

 private:
  double tolerance_;
};

class CompactStrategy final : public Strategy {
 public:
  explicit CompactStrategy(double tolerance = 1.05) : tolerance_(tolerance) {}
  std::string name() const override { return "compact"; }
  bool balances_placement() const override { return true; }
  bool supports_degraded() const override { return true; }
  std::vector<int> rebalance_placement(const PlacementInput& in) override {
    return plan_degraded(in, [t = tolerance_](const std::vector<PartLoad>& parts,
                                              int workers) {
      return compact_placement(parts, workers, t);
    });
  }

 private:
  double tolerance_;
};

class RotateStrategy final : public Strategy {
 public:
  std::string name() const override { return "rotate"; }
  bool balances_placement() const override { return true; }
  bool supports_degraded() const override { return true; }
  std::vector<int> rebalance_placement(const PlacementInput& in) override {
    return plan_degraded(in, [](const std::vector<PartLoad>& parts, int workers) {
      return rotate_placement(parts, workers);
    });
  }
};

}  // namespace picprk::lb
