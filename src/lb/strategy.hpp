// The unified load-balancing strategy layer. Before this subsystem the
// balancing logic was siloed: rank-level boundary diffusion lived inside
// the diffusion driver (§IV-B) while VP-level Charm-style balancers
// lived in the vpr runtime (§IV-C), so new strategies could not be
// compared on equal footing. An lb::Strategy expresses both directions
// behind one observe → decide → apply contract:
//
//  * observe — the caller aggregates per-part loads (particle counts or
//    measured compute seconds, see LoadMetric) so that every rank holds
//    the identical load vector;
//  * decide — rebalance_bounds()/rebalance_placement() are PURE
//    functions of their input: no clocks, no RNG, no communication.
//    Every rank replays the same decision and arrives at the same plan
//    bit-for-bit (the property par::diffuse_bounds pioneered, now a
//    layer-wide contract enforced by picprk-lint's `lb` rule and the
//    conformance suite);
//  * apply — the caller migrates mesh/particles/VPs and, for strategies
//    that ask for it, reports the globally-reduced cost of the event
//    back through note_applied() so measurement-driven strategies (the
//    `adaptive` wrapper) can weigh future decisions. Feedback values
//    MUST already be identical on every rank (allreduced), otherwise
//    per-rank strategy state would diverge.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace picprk::lb {

/// What the load numbers mean. Counts are deterministic and match the
/// PRK's per-particle cost model; compute seconds are the
/// measurement-driven alternative (Rowan et al.): they additionally see
/// imbalance that counts cannot (slow cores, system noise).
enum class LoadMetric {
  kParticles,
  kComputeSeconds,
};

/// Input of a boundary (domain-repartitioning) decision: the movable
/// column/row bounds of the 2-D decomposition plus one aggregated load
/// per part. Identical on every rank by construction (the loads come
/// out of an allreduce).
struct BoundsInput {
  LoadMetric metric = LoadMetric::kParticles;
  /// 0 = x (processor columns), 1 = y (processor rows).
  int axis = 0;
  std::uint32_t step = 0;
  /// Steps since the previous LB invocation (the interval F).
  std::uint32_t interval_steps = 0;
  /// Current boundaries in cells; size parts+1, strictly increasing,
  /// spanning [0, cells].
  std::vector<std::int64_t> bounds;
  /// Aggregated load per part; size parts. Integral when the metric is
  /// kParticles (exactly representable: counts stay far below 2^53).
  std::vector<double> loads;
  /// Mean measured compute seconds per rank over the last interval
  /// (globally reduced; 0 when no timing telemetry is available). Only
  /// cost-model strategies read it.
  double interval_compute_seconds = 0.0;
};

/// One migratable part (a VP in the vpr runtime, or a modelled VP in
/// perfsim) for a placement decision.
struct PartLoad {
  int part = 0;
  double load = 0.0;
  /// Current placement.
  int owner = 0;
  /// Ids of parts whose subdomains are adjacent — the locality hint of
  /// the paper's closing §V-B remark. May be empty; only hint-aware
  /// strategies read it.
  std::vector<int> neighbors;
};

/// Input of a placement (parts-onto-workers) decision.
struct PlacementInput {
  LoadMetric metric = LoadMetric::kParticles;
  std::uint32_t step = 0;
  std::uint32_t interval_steps = 0;
  int workers = 1;
  std::vector<PartLoad> parts;
  /// See BoundsInput::interval_compute_seconds.
  double interval_compute_seconds = 0.0;
  /// Degraded mode (localized failure recovery, docs/RESILIENCE.md):
  /// workers that have died, sorted ascending. The plan must map every
  /// part — including orphans whose current owner is dead — onto the
  /// surviving workers only. Empty (the default) = all workers live.
  /// Callers must only pass a non-empty set to strategies that claim
  /// supports_degraded().
  std::vector<int> dead_workers;
};

/// Globally-reduced measurements of one applied plan, reported back to
/// strategies that return wants_feedback(). Every field must hold the
/// identical value on every rank (max/sum-allreduced by the caller).
struct ApplyFeedback {
  /// Wall seconds of the LB event (decision + migration), max over ranks.
  double lb_seconds = 0.0;
  /// Load shipped by the event in the decision's load units (sum over
  /// ranks): particles migrated, or VP load of migrated VPs.
  double moved_load = 0.0;
  /// Bytes shipped by the event (sum over ranks).
  std::uint64_t moved_bytes = 0;
};

/// A named load-balancing strategy. Implementations must keep decide()
/// pure — all state mutation happens in note_applied(), which is fed
/// only globally-identical values.
class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Registry name this instance was created under.
  virtual std::string name() const = 0;

  /// Capability flags: which decision kinds this strategy implements.
  /// Callers must not invoke a decision the strategy does not claim.
  virtual bool balances_bounds() const { return false; }
  virtual bool balances_placement() const { return false; }

  /// Whether rebalance_placement honours PlacementInput::dead_workers —
  /// plans over the shrunken live-worker set and evacuates orphaned
  /// parts. Callers with dead workers must check this (and fall back to
  /// lb::evacuate_placement otherwise).
  virtual bool supports_degraded() const { return false; }

  /// Boundary decision: returns the new bounds (same size, strictly
  /// increasing, same span). Returning the input unchanged means "no
  /// rebalance". Pure; every rank computes the identical vector.
  virtual std::vector<std::int64_t> rebalance_bounds(const BoundsInput& in) {
    return in.bounds;
  }

  /// Placement decision: returns the new owner of each part (same
  /// order as in.parts). Pure; every rank computes the identical plan.
  virtual std::vector<int> rebalance_placement(const PlacementInput& in) {
    std::vector<int> out(in.parts.size());
    for (std::size_t i = 0; i < in.parts.size(); ++i) out[i] = in.parts[i].owner;
    return out;
  }

  /// Whether a second boundary pass along y should run after x (the
  /// two-phase extension of §IV-B). Only bounds drivers consult this.
  virtual bool wants_y_phase() const { return false; }

  /// Cost-model strategies return true; the caller then calls
  /// note_applied() with the globally-reduced cost of every applied
  /// plan (and of every skipped event, with zero costs).
  virtual bool wants_feedback() const { return false; }
  virtual void note_applied(const ApplyFeedback& feedback) { (void)feedback; }
};

}  // namespace picprk::lb
