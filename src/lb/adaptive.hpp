// The `adaptive` strategy: a cost-model wrapper that invokes an inner
// strategy only when rebalancing is predicted to pay for itself. The
// prediction compares the imbalance cost over the next interval —
// derived from the λ = max/mean telemetry the obs subsystem samples —
// against the *measured* cost of the previous LB event, scaled by a
// hysteresis factor so the decision does not flap around the breakeven
// point:
//
//   rebalance  ⇔  λ > 1 + min_gain  AND  predicted_waste > hysteresis × last_cost
//
// where, when timing telemetry is available (measured metric or obs
// sampling), predicted_waste = (λ−1) · interval_compute_seconds and
// last_cost is the allreduced wall time of the previous event; without
// timing both sides fall back to load units: (λ−1) · mean_load ·
// interval_steps versus move_cost · moved_load of the previous event.
//
// Determinism: the decision is a pure function of the (globally
// identical) input plus internal cost state, and that state advances
// only through note_applied(), which the caller feeds exclusively with
// allreduced values — so every rank's adaptive instance stays
// bit-identical.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lb/strategy.hpp"

namespace picprk::lb {

struct AdaptiveOptions {
  /// Required benefit/cost ratio before rebalancing (≥ 1 damps flapping).
  double hysteresis = 1.5;
  /// λ floor: never rebalance below 1 + min_gain.
  double min_gain = 0.02;
  /// Load-units fallback: moving one unit of load is priced at this
  /// many load·steps of imbalance waste.
  double move_cost = 3.0;
};

class AdaptiveStrategy final : public Strategy {
 public:
  /// `bounds_inner` handles boundary plans (may be null when unused),
  /// `placement_inner` placement plans. The registry wires the inner
  /// strategies from the `inner=` option (defaults: diffusion / greedy).
  AdaptiveStrategy(std::unique_ptr<Strategy> bounds_inner,
                   std::unique_ptr<Strategy> placement_inner,
                   const AdaptiveOptions& options);

  std::string name() const override { return "adaptive"; }
  bool balances_bounds() const override { return bounds_inner_ != nullptr; }
  bool balances_placement() const override { return placement_inner_ != nullptr; }
  bool supports_degraded() const override {
    return placement_inner_ != nullptr && placement_inner_->supports_degraded();
  }
  bool wants_y_phase() const override;

  std::vector<std::int64_t> rebalance_bounds(const BoundsInput& in) override;
  std::vector<int> rebalance_placement(const PlacementInput& in) override;

  bool wants_feedback() const override { return true; }
  void note_applied(const ApplyFeedback& feedback) override;

  /// Test access: measured cost of the last applied event.
  double last_cost_seconds() const { return last_cost_seconds_; }
  double last_moved_load() const { return last_moved_load_; }

 private:
  bool should_rebalance(double lambda, double mean_load,
                        std::uint32_t interval_steps,
                        double interval_compute_seconds) const;

  std::unique_ptr<Strategy> bounds_inner_;
  std::unique_ptr<Strategy> placement_inner_;
  AdaptiveOptions options_;
  double last_cost_seconds_ = 0.0;
  double last_moved_load_ = 0.0;
};

}  // namespace picprk::lb
