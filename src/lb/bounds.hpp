// Boundary (domain-repartitioning) strategies over the movable bounds
// of the 2-D block decomposition.
//
//  * `diffusion` — the paper's §IV-B scheme à la Cybenko: adjacent
//    parts whose loads differ by more than a threshold exchange
//    `border` cell-columns across the shared boundary. Local, cheap,
//    converges over repeated invocations. (The same registry name also
//    provides the ring placement balancer for the vpr runtime.)
//  * `rcb` — global recursive-coordinate-bisection repartition in the
//    style of Sauget & Latu's Eulerian/Lagrangian partitioning: the
//    per-part loads are spread uniformly over each part's cells to form
//    a piecewise-linear cumulative load, which is then bisected
//    recursively at proportional cut points. One invocation jumps
//    straight to the balanced partition at the price of potentially
//    long-range migration.
//
// Both decide() paths are pure functions of their input — every rank
// replays the identical plan (lb::Strategy contract).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lb/strategy.hpp"

namespace picprk::lb {

/// Pure diffusion decision (exposed for tests and the performance
/// model): given current boundaries and per-part loads, returns the
/// diffused boundaries. Adjacent loads differing by more than
/// `abs_threshold` shift the shared boundary by `width` cells toward
/// the loaded side. Deterministic; every rank computes the same answer.
std::vector<std::int64_t> diffuse_bounds(const std::vector<std::int64_t>& bounds,
                                         const std::vector<double>& loads,
                                         double abs_threshold, std::int64_t width);

/// Pure RCB decision: returns boundaries that split the piecewise-
/// uniform cumulative load (loads[i] spread over cells
/// [bounds[i], bounds[i+1])) into equal-weight parts by recursive
/// bisection. Every part keeps at least one cell. Deterministic.
std::vector<std::int64_t> rcb_bounds(const std::vector<std::int64_t>& bounds,
                                     const std::vector<double>& loads);

/// §IV-B boundary diffusion + ring placement, registered as "diffusion".
class DiffusionStrategy final : public Strategy {
 public:
  DiffusionStrategy(double threshold, std::int64_t border, bool two_phase)
      : threshold_(threshold), border_(border), two_phase_(two_phase) {}

  std::string name() const override { return "diffusion"; }
  bool balances_bounds() const override { return true; }
  bool balances_placement() const override { return true; }
  bool supports_degraded() const override { return true; }
  bool wants_y_phase() const override { return two_phase_; }

  std::vector<std::int64_t> rebalance_bounds(const BoundsInput& in) override;
  std::vector<int> rebalance_placement(const PlacementInput& in) override;

 private:
  double threshold_;
  std::int64_t border_;
  bool two_phase_;
};

/// Global RCB repartition, registered as "rcb". `threshold` gates the
/// repartition: bounds move only when λ = max/mean load exceeds
/// 1 + threshold, so a balanced run is not churned.
class RcbStrategy final : public Strategy {
 public:
  RcbStrategy(double threshold, bool two_phase)
      : threshold_(threshold), two_phase_(two_phase) {}

  std::string name() const override { return "rcb"; }
  bool balances_bounds() const override { return true; }
  bool wants_y_phase() const override { return two_phase_; }

  std::vector<std::int64_t> rebalance_bounds(const BoundsInput& in) override;

 private:
  double threshold_;
  bool two_phase_;
};

}  // namespace picprk::lb
